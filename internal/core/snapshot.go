package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"fexipro/internal/engine"
	"fexipro/internal/obs"
	"fexipro/internal/snap"
	"fexipro/internal/vec"
)

// DynamicIndex persistence (fexsnap/v1 + WAL, DESIGN.md §15). A data
// directory holds exactly two files:
//
//	current.snap — the last checkpoint: the full DynamicIndex state
//	               (catalog, tombstones, every shard's preprocessed main
//	               index and delta buffer) plus the WAL sequence number
//	               the checkpoint covers.
//	dyn.wal      — the append-only mutation log since that checkpoint.
//
// The recovery invariant: a mutation is acknowledged only after its WAL
// record is durably appended, and a checkpoint stores the sequence
// number it covers BEFORE the WAL is reset, so
//
//	recovered state = snapshot ∘ replay(records with seq > snapshot.seq)
//
// equals the in-memory state after exactly the acknowledged prefix of
// mutations — whatever byte the crash landed on. Replay is idempotent
// against a checkpoint race (records at or below the checkpoint's
// sequence are skipped) and strict about everything else: an add whose
// catalog ID does not line up, or a delete of a dead item, means the
// snapshot and WAL disagree, and recovery fails typed instead of
// guessing.

// Data-directory file names.
const (
	// SnapshotFile is the checkpoint file inside a -data-dir.
	SnapshotFile = "current.snap"
	// WALFile is the write-ahead log inside a -data-dir.
	WALFile = "dyn.wal"
)

// ErrNoSnapshot is returned by OpenRecovered when the directory holds
// no checkpoint — the caller should build the initial index and
// checkpoint it.
var ErrNoSnapshot = errors.New("core: no snapshot in data directory")

// DynamicIndex snapshot section tags. Shard sections are "dsh0000",
// "dsh0001", … in shard order.
const (
	secDynMeta  = "dyn.meta"
	secDynItems = "dyn.item"
	secDynDead  = "dyn.dead"
)

func dynShardTag(s int) string { return fmt.Sprintf("dsh%04d", s) }

// Dim returns the item dimensionality.
func (di *DynamicIndex) Dim() int { return di.d }

// NextID returns the catalog ID the next Add will be assigned.
func (di *DynamicIndex) NextID() int { return di.items.Rows }

// Alive reports whether id names a live (inserted and not deleted)
// catalog item.
func (di *DynamicIndex) Alive(id int) bool {
	return id >= 0 && id < di.items.Rows && !di.dead[id]
}

// SaveSnapshot writes the full index state as a fexsnap/v1 container.
// lastSeq is the WAL sequence number this state covers: replaying
// records with larger sequence numbers on top of the loaded snapshot
// reproduces the live index.
func (di *DynamicIndex) SaveSnapshot(w io.Writer, lastSeq uint64) error {
	var b snap.Builder
	b.Section(secDynMeta, func(e *snap.Encoder) {
		e.U64(lastSeq)
		encodeOptions(e, di.opts)
		e.I64(int64(di.d))
		e.F64(di.rebuild)
		e.I64(int64(len(di.shards)))
		e.I64(int64(di.deadCount))
	})
	b.Section(secDynItems, func(e *snap.Encoder) { e.Matrix(di.items) })
	b.Section(secDynDead, func(e *snap.Encoder) {
		dead := make([]int, 0, len(di.dead))
		for id := range di.dead {
			dead = append(dead, id)
		}
		sort.Ints(dead) // map order would break byte-identical saves
		e.Ints(dead)
	})
	for s, sh := range di.shards {
		var mainBytes []byte
		if sh.main != nil {
			var buf bytes.Buffer
			if err := sh.main.Save(&buf); err != nil {
				return err
			}
			mainBytes = buf.Bytes()
		}
		b.Section(dynShardTag(s), func(e *snap.Encoder) {
			e.Bool(sh.main != nil)
			if sh.main != nil {
				e.Bytes8(mainBytes) // nested fexsnap container
				e.Ints(sh.mainIDs)
			}
			e.Ints(sh.delta)
			e.I64(int64(sh.deadInMain))
			e.I64(int64(sh.rebuilds))
		})
	}
	return b.Flush(w)
}

// LoadSnapshot reads a snapshot written by SaveSnapshot and returns the
// reconstructed index plus the WAL sequence number it covers. workers
// sizes the query engine exactly as in NewDynamicIndexSharded. Every
// error wraps a snap sentinel.
func LoadSnapshot(r io.Reader, workers int) (*DynamicIndex, uint64, error) {
	f, err := snap.Read(r)
	if err != nil {
		return nil, 0, fmt.Errorf("core: reading dynamic snapshot: %w", err)
	}
	d, err := sectionDecoder(f, secDynMeta)
	if err != nil {
		return nil, 0, err
	}
	lastSeq := d.U64()
	di := &DynamicIndex{opts: decodeOptions(d), dead: make(map[int]bool)}
	di.d = int(d.I64())
	di.rebuild = d.F64()
	nShards := int(d.I64())
	di.deadCount = int(d.I64())
	if err := d.Finish(); err != nil {
		return nil, 0, fmt.Errorf("core: dynamic meta: %w", err)
	}
	if di.d < 1 || di.rebuild <= 0 || nShards < 1 || nShards > 1<<20 || di.deadCount < 0 {
		return nil, 0, fmt.Errorf("%w: dynamic meta d=%d rebuild=%g shards=%d dead=%d",
			snap.ErrChecksum, di.d, di.rebuild, nShards, di.deadCount)
	}

	d, err = sectionDecoder(f, secDynItems)
	if err != nil {
		return nil, 0, err
	}
	di.items = d.Matrix()
	if err := d.Finish(); err != nil {
		return nil, 0, fmt.Errorf("core: dynamic items: %w", err)
	}
	if di.items == nil || di.items.Cols != di.d {
		return nil, 0, fmt.Errorf("%w: dynamic catalog matrix disagrees with d=%d", snap.ErrChecksum, di.d)
	}

	d, err = sectionDecoder(f, secDynDead)
	if err != nil {
		return nil, 0, err
	}
	deadIDs := d.Ints()
	if err := d.Finish(); err != nil {
		return nil, 0, fmt.Errorf("core: dynamic tombstones: %w", err)
	}
	if len(deadIDs) != di.deadCount {
		return nil, 0, fmt.Errorf("%w: %d tombstones, meta says %d", snap.ErrChecksum, len(deadIDs), di.deadCount)
	}
	for _, id := range deadIDs {
		if id < 0 || id >= di.items.Rows || di.dead[id] {
			return nil, 0, fmt.Errorf("%w: tombstone %d invalid for %d items", snap.ErrChecksum, id, di.items.Rows)
		}
		di.dead[id] = true
	}

	di.shards = make([]*dynShard, nShards)
	for s := range di.shards {
		sh, err := loadDynShard(f, s, nShards, di)
		if err != nil {
			return nil, 0, err
		}
		di.shards[s] = sh
	}
	di.eng = engine.New(&dynKernel{di: di}, workers)
	return di, lastSeq, nil
}

func loadDynShard(f *snap.File, s, nShards int, di *DynamicIndex) (*dynShard, error) {
	payload, ok := f.Section(dynShardTag(s))
	if !ok {
		return nil, fmt.Errorf("%w: dynamic snapshot missing shard section %q", snap.ErrChecksum, dynShardTag(s))
	}
	d := snap.NewDecoder(payload)
	sh := &dynShard{}
	if d.Bool() {
		mainBytes := d.Bytes8()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", s, err)
		}
		main, err := ReadIndex(bytes.NewReader(mainBytes))
		if err != nil {
			return nil, fmt.Errorf("core: shard %d main index: %w", s, err)
		}
		sh.main = main
		sh.ret = NewRetriever(main)
		sh.mainIDs = d.Ints()
	}
	sh.delta = d.Ints()
	sh.deadInMain = int(d.I64())
	sh.rebuilds = int(d.I64())
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("core: shard %d: %w", s, err)
	}
	if sh.main != nil {
		if len(sh.mainIDs) != sh.main.n {
			return nil, fmt.Errorf("%w: shard %d has %d main IDs for %d indexed rows",
				snap.ErrChecksum, s, len(sh.mainIDs), sh.main.n)
		}
		if sh.main.d != di.d {
			return nil, fmt.Errorf("%w: shard %d main index has d=%d, want %d", snap.ErrChecksum, s, sh.main.d, di.d)
		}
	}
	if sh.deadInMain < 0 || sh.deadInMain > len(sh.mainIDs) || sh.rebuilds < 0 {
		return nil, fmt.Errorf("%w: shard %d deadInMain=%d rebuilds=%d", snap.ErrChecksum, s, sh.deadInMain, sh.rebuilds)
	}
	// Ownership and ordering: every ID must belong to this shard, be a
	// real catalog row, and mainIDs must ascend (inMain binary-searches).
	prev := -1
	for _, id := range sh.mainIDs {
		if id <= prev || id >= di.items.Rows || id%nShards != s {
			return nil, fmt.Errorf("%w: shard %d main ID %d out of place", snap.ErrChecksum, s, id)
		}
		prev = id
	}
	// The delta buffer's vectors equal their catalog rows by
	// construction (AddContext clones the inserted item into both), so
	// the snapshot stores only the IDs and rebuilds the views here.
	sh.deltaItems = make([][]float64, len(sh.delta))
	for i, id := range sh.delta {
		if id < 0 || id >= di.items.Rows || id%nShards != s {
			return nil, fmt.Errorf("%w: shard %d delta ID %d out of place", snap.ErrChecksum, s, id)
		}
		sh.deltaItems[i] = vec.Clone(di.items.Row(id))
	}
	return sh, nil
}

// WriteSnapshotDir atomically checkpoints the index into dir: the
// snapshot is written to a temporary file, fsynced, and renamed over
// SnapshotFile, so a crash mid-checkpoint leaves the previous
// checkpoint intact.
func WriteSnapshotDir(dir string, di *DynamicIndex, lastSeq uint64) error {
	tmp := filepath.Join(dir, SnapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := di.SaveSnapshot(f, lastSeq); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, SnapshotFile)); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Recovered is the result of OpenRecovered: the reconstructed index and
// the open WAL positioned to accept the next mutation.
type Recovered struct {
	Index *DynamicIndex
	WAL   *snap.WAL
	// SnapshotSeq is the checkpoint's WAL sequence; Replayed counts the
	// log records applied on top of it (for the wal_replays metrics).
	SnapshotSeq uint64
	Replayed    int
	// TornTail is true when the WAL ended mid-record and was repaired
	// back to the acknowledged prefix — the expected state after a crash
	// during an append.
	TornTail bool
}

// OpenRecovered restores a DynamicIndex from dir (snapshot + WAL
// replay) and returns it with the repaired, append-ready WAL. When the
// directory has no snapshot it returns ErrNoSnapshot — build the
// initial index, checkpoint it with WriteSnapshotDir, then call again.
// Any other failure wraps a snap sentinel; a torn WAL tail is NOT a
// failure (it is repaired, and only unacknowledged bytes are lost).
//
// When ctx carries an obs span, recovery is traced as "snapshot.load"
// and "wal.replay" children, so a slow boot shows where the time went.
func OpenRecovered(ctx context.Context, dir string, workers, syncEvery int) (*Recovered, error) {
	snapPath := filepath.Join(dir, SnapshotFile)
	f, err := os.Open(snapPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoSnapshot
	}
	if err != nil {
		return nil, err
	}
	_, lsp := obs.StartSpan(ctx, "snapshot.load")
	di, lastSeq, err := LoadSnapshot(f, workers)
	_ = f.Close()
	if lsp != nil {
		lsp.AttrStr("file", snapPath)
		lsp.End()
	}
	if err != nil {
		return nil, err
	}

	_, rsp := obs.StartSpan(ctx, "wal.replay")
	rec, err := replayInto(di, dir, lastSeq, syncEvery)
	if rsp != nil {
		if rec != nil {
			rsp.AttrInt("records", int64(rec.Replayed))
		}
		rsp.End()
	}
	return rec, err
}

func replayInto(di *DynamicIndex, dir string, lastSeq uint64, syncEvery int) (*Recovered, error) {
	w, rp, err := snap.OpenWAL(filepath.Join(dir, WALFile), di.d, syncEvery, lastSeq)
	if err != nil {
		return nil, err
	}
	rec := &Recovered{Index: di, WAL: w, SnapshotSeq: lastSeq, TornTail: rp.Torn}
	for _, r := range rp.Records {
		if r.Seq <= lastSeq {
			// The checkpoint covered this record; a crash between the
			// snapshot rename and the WAL reset leaves such records
			// behind, and replaying them would double-apply.
			continue
		}
		if err := applyWALRecord(di, r); err != nil {
			_ = w.Close()
			return nil, err
		}
		rec.Replayed++
	}
	return rec, nil
}

// applyWALRecord applies one logged mutation during recovery, strictly:
// any disagreement between the log and the snapshot state is
// corruption, not something to paper over.
func applyWALRecord(di *DynamicIndex, r snap.WALRecord) error {
	switch r.Op {
	case snap.WALAdd:
		if int(r.ID) != di.NextID() {
			return fmt.Errorf("%w: WAL record %d adds ID %d, catalog expects %d",
				snap.ErrChecksum, r.Seq, r.ID, di.NextID())
		}
		if _, err := di.Add(r.Vec); err != nil {
			return fmt.Errorf("%w: WAL record %d: %v", snap.ErrChecksum, r.Seq, err)
		}
	case snap.WALDelete:
		if err := di.Delete(int(r.ID)); err != nil {
			return fmt.Errorf("%w: WAL record %d: %v", snap.ErrChecksum, r.Seq, err)
		}
	default:
		return fmt.Errorf("%w: WAL record %d has unknown op %q", snap.ErrChecksum, r.Seq, byte(r.Op))
	}
	return nil
}
