package core_test

import (
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/engine"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// TestSnapshotRoundTrip: a saved-and-loaded FEXIPRO index must be
// indistinguishable from the one that was built — byte-identical on
// re-save, bit-identical results and stage counters through the sharded
// engine, and unchanged cancellation semantics. "F" pins the minimal
// section set, "F-SIR" the full one (SVD + integer + reduction).
func TestSnapshotRoundTrip(t *testing.T) {
	for _, variant := range []string{"F", "F-SIR"} {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			opts, err := core.OptionsForVariant(variant)
			if err != nil {
				t.Fatal(err)
			}
			searchtest.CheckSnapshotRoundTrip(t, searchtest.SnapshotCodec[*core.Index]{
				Build: func(items *vec.Matrix) *core.Index {
					idx, err := core.NewIndex(items, opts)
					if err != nil {
						t.Fatalf("%s: %v", variant, err)
					}
					return idx
				},
				Save: (*core.Index).Save,
				Load: core.ReadIndex,
				Searcher: func(ix *core.Index, shards int) searchtest.FaultSearcher {
					return engine.New(core.NewSharded(ix, shards), 2)
				},
			}, "core/"+variant)
		})
	}
}
