package core

import (
	"context"
	"fmt"
	"math"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// Retriever executes top-k queries against an Index (Algorithm 4). Each
// Retriever owns scratch buffers and stats for one query at a time, so
// concurrent queries need separate Retrievers over the same shared Index.
type Retriever struct {
	idx   *Index
	hook  *faults.Hook
	stats search.Stats

	// scratch, reused across queries
	qbar      []float64
	qFloors   []int32
	qFloors16 []int16
}

// NewRetriever returns a query executor for the index.
func NewRetriever(idx *Index) *Retriever {
	r := &Retriever{idx: idx, qbar: make([]float64, idx.d)}
	if id := idx.ints; id != nil {
		if id.floors16 != nil {
			r.qFloors16 = make([]int16, idx.d)
		} else {
			r.qFloors = make([]int32, idx.d)
		}
	}
	return r
}

// Stats implements search.Searcher for the most recent query.
func (r *Retriever) Stats() search.Stats { return r.stats }

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook called once per scanned item.
func (r *Retriever) SetFaultHook(h *faults.Hook) { r.hook = h }

// queryState holds the per-query derived quantities of Algorithm 4
// lines 5–9.
type queryState struct {
	qNorm   float64 // ‖q‖ in the original space (used with the original ‖p‖ for Cauchy–Schwarz)
	barNorm float64 // ‖q̄‖ in the working space
	barTail float64 // ‖q̄^h‖ over coordinates w..d

	// Integer part.
	intOK       bool
	qSumAbsHead int64
	qSumAbsTail int64
	headFactor  float64 // maxq^ℓ·maxP^ℓ/e², converts head IU to a bound on q̄^ℓᵀp̄^ℓ
	tailFactor  float64

	// Reduction part.
	redOK      bool
	invBarNorm float64 // 1/‖q̄‖
	headConstQ float64 // (2/‖q̄‖)·Σ_{s<w} c_s·q̄_s
	hhTailQ    float64 // ‖q̂̂^h‖ = 2·sqrt(Σ_{s≥w}(q̄_s/‖q̄‖+c_s)²)
	kq         float64 // affine offset of the threshold map t → t′
}

// Search returns the exact top-k inner products of q with the indexed
// items (Algorithm 4). Scores are computed in the working space; with the
// SVD transformation enabled they equal the original inner products up to
// float64 rounding (Theorem 1).
func (r *Retriever) Search(q []float64, k int) []topk.Result {
	res, _ := r.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext implements search.ContextSearcher: the scan polls ctx
// every search.CheckStride items and returns the best-so-far partial
// top-k with an ErrDeadline-wrapping error on cancellation.
func (r *Retriever) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	idx := r.idx
	if len(q) != idx.d {
		panic(fmt.Sprintf("core: query dim %d != item dim %d", len(q), idx.d))
	}
	r.stats = search.Stats{}
	c := topk.New(k)
	if k <= 0 {
		return nil, nil
	}

	qs := r.prepareQuery(q)
	slack := idx.opts.PruneSlack
	done := ctx.Done()
	hook := r.hook

	for i := 0; i < idx.n; i++ {
		if hook != nil || (done != nil && i&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, i); err != nil {
				return c.Results(), err
			}
		}
		t := c.Threshold()
		if qs.qNorm*idx.norms[i] <= t {
			if !idx.opts.Unsorted {
				// Sorted by length: nothing later can qualify either.
				r.stats.PrunedByLength += idx.n - i
				break
			}
			r.stats.PrunedByLength++
			continue
		}
		r.stats.Scanned++
		v, ok := r.coordinateScan(i, qs, t, slack)
		if ok && v > t {
			c.Push(idx.perm[i], v)
		}
	}
	return c.Results(), nil
}

// prepareQuery transforms q into the working space and precomputes every
// per-query constant used by the staged pruning tests.
func (r *Retriever) prepareQuery(q []float64) queryState {
	idx := r.idx
	var qs queryState
	qs.qNorm = vec.Norm(q)

	if idx.thin != nil {
		bar := idx.thin.TransformQuery(q)
		copy(r.qbar, bar)
	} else {
		copy(r.qbar, q)
	}
	qbar := r.qbar
	qs.barNorm = vec.Norm(qbar)
	qs.barTail = vec.NormRange(qbar, idx.w, idx.d)

	if id := idx.ints; id != nil {
		qs.intOK = true
		maxQHead := vec.AbsMaxRange(qbar, 0, idx.w)
		maxQTail := vec.AbsMaxRange(qbar, idx.w, idx.d)
		for s, v := range qbar {
			var scaled float64
			if s < idx.w {
				if maxQHead > 0 {
					scaled = id.e * v / maxQHead
				}
			} else {
				if maxQTail > 0 {
					scaled = id.e * v / maxQTail
				}
			}
			f := int32(math.Floor(scaled))
			if r.qFloors16 != nil {
				r.qFloors16[s] = int16(f)
			} else {
				r.qFloors[s] = f
			}
			a := int64(f)
			if a < 0 {
				a = -a
			}
			if s < idx.w {
				qs.qSumAbsHead += a
			} else {
				qs.qSumAbsTail += a
			}
		}
		qs.headFactor = maxQHead * id.headScale / id.e
		qs.tailFactor = maxQTail * id.tailScale / id.e
	}

	if rd := idx.red; rd != nil && qs.barNorm > 0 {
		qs.redOK = true
		qs.invBarNorm = 1 / qs.barNorm
		var headCQ, tailSq, sumCQ float64
		for s, v := range qbar {
			u := v*qs.invBarNorm + rd.c[s]
			sumCQ += rd.c[s] * v
			if s < idx.w {
				headCQ += rd.c[s] * v
			} else {
				tailSq += u * u
			}
		}
		qs.headConstQ = 2 * headCQ * qs.invBarNorm
		qs.hhTailQ = 2 * math.Sqrt(tailSq)
		qs.kq = -rd.b*rd.b + rd.sumC2 + 2*sumCQ*qs.invBarNorm
	}
	return qs
}

// coordinateScan is Algorithm 5: the staged pruning cascade for one
// candidate. It returns the exact working-space product and true, or
// (0, false) when the candidate was pruned.
func (r *Retriever) coordinateScan(i int, qs queryState, t, slack float64) (float64, bool) {
	idx := r.idx
	w, d := idx.w, idx.d
	qbar := r.qbar
	row := idx.bar.Row(i)
	margin := slack * (math.Abs(t) + 1)
	ub1 := qs.barTail * idx.barTail[i]

	// Lines 2–8: integer upper bounds, partial (Eq. 6) then full (Eq. 3).
	// Under the ReductionFirst (SRI-order) ablation these move after the
	// reduction bound, where only the tail part remains useful.
	var bHead float64
	if qs.intOK && !idx.opts.ReductionFirst {
		id := idx.ints
		iuHead := r.intDot(i, 0, w) + qs.qSumAbsHead + id.sumAbsHead[i] + int64(w)
		bHead = float64(iuHead) * qs.headFactor
		if bHead+ub1 <= t-margin {
			r.stats.PrunedByIntHead++
			return 0, false
		}
		if w < d {
			iuTail := r.intDot(i, w, d) + qs.qSumAbsTail + id.sumAbsTail[i] + int64(d-w)
			bTail := float64(iuTail) * qs.tailFactor
			if bHead+bTail <= t-margin {
				r.stats.PrunedByIntFull++
				return 0, false
			}
		}
	}

	// Lines 9–13: exact partial product + Eq. 1 incremental pruning.
	if w >= d {
		r.stats.FullProducts++
		return vec.Dot(qbar, row), true
	}
	v := vec.DotRange(qbar, row, 0, w)
	if v+ub1 <= t-margin {
		r.stats.PrunedByIncremental++
		return 0, false
	}

	// Lines 14–17: monotonicity-reduction pruning in the reduced space.
	if qs.redOK {
		rd := idx.red
		hhPartial := 2*v*qs.invBarNorm + rd.headConstP[i] + qs.headConstQ
		ub2 := qs.hhTailQ * rd.hhTail[i]
		if !math.IsInf(t, -1) {
			tPrime := 2*t*qs.invBarNorm + qs.kq
			hhMargin := slack * (math.Abs(tPrime) + 1)
			if hhPartial+ub2 <= tPrime-hhMargin {
				r.stats.PrunedByMonotone++
				return 0, false
			}
		}
	}

	// SRI-order ablation: with the exact head v in hand, only the tail
	// integer bound can still avoid the remaining d−w multiplications.
	if qs.intOK && idx.opts.ReductionFirst {
		id := idx.ints
		iuTail := r.intDot(i, w, d) + qs.qSumAbsTail + id.sumAbsTail[i] + int64(d-w)
		bTail := float64(iuTail) * qs.tailFactor
		if v+bTail <= t-margin {
			r.stats.PrunedByIntFull++
			return 0, false
		}
	}

	// Lines 18–20: finish the exact product.
	r.stats.FullProducts++
	return v + vec.DotRange(qbar, row, w, d), true
}

// intDot computes ⌊q̂⌋·⌊p̂ᵢ⌋ over coordinates [lo,hi) against either the
// int32 or the compact int16 floor storage.
func (r *Retriever) intDot(i, lo, hi int) int64 {
	d := r.idx.d
	id := r.idx.ints
	base := i * d
	if id.floors16 != nil {
		return vec.DotInt16(r.qFloors16[lo:hi], id.floors16[base+lo:base+hi])
	}
	return vec.DotInt64(r.qFloors[lo:hi], id.floors[base+lo:base+hi])
}

var _ search.ContextSearcher = (*Retriever)(nil)
