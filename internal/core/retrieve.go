package core

import (
	"context"
	"fmt"
	"math"

	"fexipro/internal/faults"
	"fexipro/internal/obs"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// Retriever executes top-k queries against an Index (Algorithm 4). Each
// Retriever owns scratch buffers and stats for one query at a time, so
// concurrent queries need separate Retrievers over the same shared Index.
//
// Since the sharded-execution refactor the Retriever is a thin wrapper:
// all query preparation and scanning lives on the Index as
// prepareQuery / scanRange, parameterized by a queryState (per-query
// scratch) and an explicit row range, so the same code path serves both
// this single-scan Retriever (range [0, n), no shared threshold) and
// the per-shard kernel in Sharded (sub-ranges, shared threshold).
type Retriever struct {
	idx   *Index
	hook  *faults.Hook
	stats search.Stats
	qs    *queryState
}

// NewRetriever returns a query executor for the index.
func NewRetriever(idx *Index) *Retriever {
	return &Retriever{idx: idx, qs: idx.newQueryState()}
}

// Stats implements search.Searcher for the most recent query.
func (r *Retriever) Stats() search.Stats { return r.stats }

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook called once per scanned item.
func (r *Retriever) SetFaultHook(h *faults.Hook) { r.hook = h }

// queryState holds the per-query derived quantities of Algorithm 4
// lines 5–9 plus the scratch buffers they are computed into. It is
// written once per query by Index.prepareQuery and then read-only
// during the scan, so a single queryState may be shared by any number
// of concurrent scanRange calls over disjoint row ranges.
type queryState struct {
	// Scratch owned by this state (sized for the index it was created
	// for via Index.newQueryState).
	qbar      []float64
	qFloors   []int32
	qFloors16 []int16

	qNorm   float64 // ‖q‖ in the original space (used with the original ‖p‖ for Cauchy–Schwarz)
	barNorm float64 // ‖q̄‖ in the working space
	barTail float64 // ‖q̄^h‖ over coordinates w..d

	// Integer part.
	intOK       bool
	qSumAbsHead int64
	qSumAbsTail int64
	headFactor  float64 // maxq^ℓ·maxP^ℓ/e², converts head IU to a bound on q̄^ℓᵀp̄^ℓ
	tailFactor  float64

	// Reduction part.
	redOK      bool
	invBarNorm float64 // 1/‖q̄‖
	headConstQ float64 // (2/‖q̄‖)·Σ_{s<w} c_s·q̄_s
	hhTailQ    float64 // ‖q̂̂^h‖ = 2·sqrt(Σ_{s≥w}(q̄_s/‖q̄‖+c_s)²)
	kq         float64 // affine offset of the threshold map t → t′
}

// newQueryState allocates per-query scratch sized for this index.
func (idx *Index) newQueryState() *queryState {
	qs := &queryState{qbar: make([]float64, idx.d)}
	if id := idx.ints; id != nil {
		if id.floors16 != nil {
			qs.qFloors16 = make([]int16, idx.d)
		} else {
			qs.qFloors = make([]int32, idx.d)
		}
	}
	return qs
}

// Search returns the exact top-k inner products of q with the indexed
// items (Algorithm 4). Scores are computed in the working space; with the
// SVD transformation enabled they equal the original inner products up to
// float64 rounding (Theorem 1).
func (r *Retriever) Search(q []float64, k int) []topk.Result {
	res, _ := r.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext implements search.ContextSearcher: the scan polls ctx
// every search.CheckStride items and returns the best-so-far partial
// top-k with an ErrDeadline-wrapping error on cancellation.
//
// When ctx carries an obs span, the two lifecycle stages of the
// single-scan path — the per-query transform (Algorithm 4 lines 5–9)
// and the pruning scan — are timed as "transform" and "scan" children,
// matching the names the sharded engine uses so stage-timing consumers
// need no per-topology cases. With no span in ctx every call is a nil
// no-op; nothing span-related happens per item.
func (r *Retriever) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	idx := r.idx
	if len(q) != idx.d {
		panic(fmt.Sprintf("core: query dim %d != item dim %d", len(q), idx.d))
	}
	r.stats = search.Stats{}
	if k <= 0 {
		return nil, nil
	}
	sp := obs.SpanFrom(ctx)
	c := topk.New(k)
	tsp := sp.StartChild("transform")
	idx.prepareQuery(q, r.qs)
	tsp.End()
	ssp := sp.StartChild("scan")
	err := idx.scanRange(ctx, r.hook, r.qs, 0, idx.n, c, nil, &r.stats)
	if ssp != nil {
		ssp.AttrInt("scanned", int64(r.stats.Scanned))
		ssp.AttrInt("pruned", int64(r.stats.TotalPruned()))
		ssp.AttrInt("fullProducts", int64(r.stats.FullProducts))
		ssp.End()
	}
	if err != nil {
		return c.Results(), err
	}
	return c.Results(), nil
}

// scanRange runs Algorithm 4's scan loop over the sorted rows [lo, hi),
// offering survivors to c. It is the shared engine between the
// single-scan Retriever (lo=0, hi=n, shared=nil) and one shard of a
// Sharded kernel (a contiguous sub-range plus the cross-shard
// threshold). The range being contiguous in the norm-sorted order is
// what keeps the sorted-scan length break valid within a shard.
//
// Pruning is STRICT — a candidate is discarded only when its upper
// bound is strictly below the effective threshold — so together with
// the collector's canonical (score desc, ID asc) tie order, the set of
// surviving candidates is independent of how [0, n) is partitioned:
// anything pruned has score < t ≤ final k-th score and therefore ranks
// canonically below k retained items. shared, when non-nil, can only
// RAISE the effective threshold with published full-heap thresholds
// from other shards, which are themselves global lower bounds, so the
// argument is unchanged.
//
// ctx is polled every search.CheckStride items at SHARD-LOCAL indices
// (i−lo), so every shard polls on its first item and fault-hook
// CancelAtItem plans fire relative to each shard's own progress. On
// cancellation the error wraps search.ErrDeadline and c holds
// best-so-far results whose scores are true (working-space) inner
// products.
func (idx *Index) scanRange(ctx context.Context, hook *faults.Hook, qs *queryState, lo, hi int, c *topk.Collector, shared *search.SharedThreshold, stats *search.Stats) error {
	slack := idx.opts.PruneSlack
	done := ctx.Done()
	//fex:hot
	for i := lo; i < hi; i++ {
		local := i - lo
		if hook != nil || (done != nil && local&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, local); err != nil {
				return err
			}
		}
		t := shared.Floor(c.Threshold())
		lenBound := qs.qNorm * idx.norms[i] //fex:bound
		if lenBound < t {
			if !idx.opts.Unsorted {
				// Sorted by length: nothing later in this range can
				// qualify either.
				stats.PrunedByLength += hi - i
				return nil
			}
			stats.PrunedByLength++
			continue
		}
		stats.Scanned++
		v, ok := idx.coordinateScan(i, qs, t, slack, stats)
		if ok {
			// The collector applies the canonical threshold test itself
			// (strictly-better-than-root in (score desc, ID asc) order);
			// publish the tightened threshold for sibling shards once
			// the heap is full.
			if c.Push(idx.perm[i], v) && c.Len() == c.K() {
				shared.Publish(c.Threshold())
			}
		}
	}
	return nil
}

// prepareQuery transforms q into the working space and precomputes every
// per-query constant used by the staged pruning tests, writing into qs.
func (idx *Index) prepareQuery(q []float64, qs *queryState) {
	scratch := *qs
	*qs = queryState{qbar: scratch.qbar, qFloors: scratch.qFloors, qFloors16: scratch.qFloors16}
	qs.qNorm = vec.Norm(q)

	if idx.thin != nil {
		bar := idx.thin.TransformQuery(q)
		copy(qs.qbar, bar)
	} else {
		copy(qs.qbar, q)
	}
	qbar := qs.qbar
	qs.barNorm = vec.Norm(qbar)
	qs.barTail = vec.NormRange(qbar, idx.w, idx.d)

	if id := idx.ints; id != nil {
		qs.intOK = true
		maxQHead := vec.AbsMaxRange(qbar, 0, idx.w)
		maxQTail := vec.AbsMaxRange(qbar, idx.w, idx.d)
		for s, v := range qbar {
			var scaled float64
			if s < idx.w {
				if maxQHead > 0 {
					scaled = id.e * v / maxQHead
				}
			} else {
				if maxQTail > 0 {
					scaled = id.e * v / maxQTail
				}
			}
			f := int32(math.Floor(scaled))
			if qs.qFloors16 != nil {
				qs.qFloors16[s] = int16(f)
			} else {
				qs.qFloors[s] = f
			}
			a := int64(f)
			if a < 0 {
				a = -a
			}
			if s < idx.w {
				qs.qSumAbsHead += a
			} else {
				qs.qSumAbsTail += a
			}
		}
		qs.headFactor = maxQHead * id.headScale / id.e
		qs.tailFactor = maxQTail * id.tailScale / id.e
	}

	if rd := idx.red; rd != nil && qs.barNorm > 0 {
		qs.redOK = true
		qs.invBarNorm = 1 / qs.barNorm
		var headCQ, tailSq, sumCQ float64
		for s, v := range qbar {
			u := v*qs.invBarNorm + rd.c[s]
			sumCQ += rd.c[s] * v
			if s < idx.w {
				headCQ += rd.c[s] * v
			} else {
				tailSq += u * u
			}
		}
		qs.headConstQ = 2 * headCQ * qs.invBarNorm
		qs.hhTailQ = 2 * math.Sqrt(tailSq)
		qs.kq = -rd.b*rd.b + rd.sumC2 + 2*sumCQ*qs.invBarNorm
	}
}

// coordinateScan is Algorithm 5: the staged pruning cascade for one
// candidate. It returns the exact working-space product and true, or
// (0, false) when the candidate was pruned. Every prune test is STRICT
// (`< t − margin`), matching scanRange's invariant that pruned items
// have score strictly below the threshold.
func (idx *Index) coordinateScan(i int, qs *queryState, t, slack float64, stats *search.Stats) (float64, bool) {
	w, d := idx.w, idx.d
	qbar := qs.qbar
	row := idx.bar.Row(i)
	margin := slack * (math.Abs(t) + 1)
	ub1 := qs.barTail * idx.barTail[i] //fex:bound

	// Lines 2–8: integer upper bounds, partial (Eq. 6) then full (Eq. 3).
	// Under the ReductionFirst (SRI-order) ablation these move after the
	// reduction bound, where only the tail part remains useful.
	var bHead float64
	if qs.intOK && !idx.opts.ReductionFirst {
		id := idx.ints
		iuHead := idx.intDot(qs, i, 0, w) + qs.qSumAbsHead + id.sumAbsHead[i] + int64(w)
		bHead = float64(iuHead) * qs.headFactor //fex:bound
		if bHead+ub1 < t-margin {
			stats.PrunedByIntHead++
			return 0, false
		}
		if w < d {
			iuTail := idx.intDot(qs, i, w, d) + qs.qSumAbsTail + id.sumAbsTail[i] + int64(d-w)
			bTail := float64(iuTail) * qs.tailFactor //fex:bound
			if bHead+bTail < t-margin {
				stats.PrunedByIntFull++
				return 0, false
			}
		}
	}

	// Lines 9–13: exact partial product + Eq. 1 incremental pruning.
	if w >= d {
		stats.FullProducts++
		return vec.Dot(qbar, row), true
	}
	v := vec.DotRange(qbar, row, 0, w)
	if v+ub1 < t-margin {
		stats.PrunedByIncremental++
		return 0, false
	}

	// Lines 14–17: monotonicity-reduction pruning in the reduced space.
	if qs.redOK {
		rd := idx.red
		hhPartial := 2*v*qs.invBarNorm + rd.headConstP[i] + qs.headConstQ
		ub2 := qs.hhTailQ * rd.hhTail[i] //fex:bound
		if !math.IsInf(t, -1) {
			tPrime := 2*t*qs.invBarNorm + qs.kq
			hhMargin := slack * (math.Abs(tPrime) + 1)
			if hhPartial+ub2 < tPrime-hhMargin {
				stats.PrunedByMonotone++
				return 0, false
			}
		}
	}

	// SRI-order ablation: with the exact head v in hand, only the tail
	// integer bound can still avoid the remaining d−w multiplications.
	if qs.intOK && idx.opts.ReductionFirst {
		id := idx.ints
		iuTail := idx.intDot(qs, i, w, d) + qs.qSumAbsTail + id.sumAbsTail[i] + int64(d-w)
		bTail := float64(iuTail) * qs.tailFactor //fex:bound
		if v+bTail < t-margin {
			stats.PrunedByIntFull++
			return 0, false
		}
	}

	// Lines 18–20: finish the exact product.
	stats.FullProducts++
	return v + vec.DotRange(qbar, row, w, d), true
}

// intDot computes ⌊q̂⌋·⌊p̂ᵢ⌋ over coordinates [lo,hi) against either the
// int32 or the compact int16 floor storage.
func (idx *Index) intDot(qs *queryState, i, lo, hi int) int64 {
	d := idx.d
	id := idx.ints
	base := i * d
	if id.floors16 != nil {
		return vec.DotInt16(qs.qFloors16[lo:hi], id.floors16[base+lo:base+hi])
	}
	return vec.DotInt64(qs.qFloors[lo:hi], id.floors[base+lo:base+hi])
}

var _ search.ContextSearcher = (*Retriever)(nil)
