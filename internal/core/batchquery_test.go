package core_test

import (
	"math/rand"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func TestBatchTopKMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	items, _ := searchtest.RandomInstance(rng, 600, 14)
	queries := vec.NewMatrix(37, 14)
	for i := range queries.Data {
		queries.Data[i] = rng.NormFloat64()
	}
	idx, err := core.NewIndex(items, core.Options{SVD: true, Int: true, Reduction: true})
	if err != nil {
		t.Fatal(err)
	}
	single := core.NewRetriever(idx)
	for _, workers := range []int{0, 1, 3, 8} {
		all, err := core.BatchTopK(idx, queries, 6, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != 37 {
			t.Fatalf("workers=%d: %d lists", workers, len(all))
		}
		for qi := 0; qi < queries.Rows; qi++ {
			want := single.Search(queries.Row(qi), 6)
			got := all[qi]
			if len(got) != len(want) {
				t.Fatalf("workers=%d q=%d: %d vs %d results", workers, qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d q=%d rank %d: %v vs %v", workers, qi, i, got[i], want[i])
				}
			}
		}
	}
}

func TestBatchTopKDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	items, _ := searchtest.RandomInstance(rng, 50, 6)
	idx, err := core.NewIndex(items, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.BatchTopK(idx, vec.NewMatrix(3, 5), 2, 1); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestBatchTopKEmptyQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	items, _ := searchtest.RandomInstance(rng, 50, 6)
	idx, err := core.NewIndex(items, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := core.BatchTopK(idx, vec.NewMatrix(0, 6), 2, 4)
	if err != nil || len(all) != 0 {
		t.Fatalf("empty batch: %v, %v", all, err)
	}
}
