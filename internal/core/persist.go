package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fexipro/internal/svd"
	"fexipro/internal/vec"
)

// Index persistence: preprocessing costs O(n·d²) (thin SVD plus derived
// arrays), so a deployed service wants to preprocess once and load the
// finished index at startup. The format ("FXI2") is a versioned,
// little-endian dump of every Index field; Load rebuilds an Index that
// answers queries identically to the one that was saved.

const indexMagic = "FXI2"

type binWriter struct {
	w   *bufio.Writer
	err error
}

func (b *binWriter) raw(p []byte) {
	if b.err != nil {
		return
	}
	_, b.err = b.w.Write(p)
}

func (b *binWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.raw(buf[:])
}

func (b *binWriter) i64(v int64)   { b.u64(uint64(v)) }
func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }
func (b *binWriter) bool(v bool)   { b.u64(boolToU64(v)) }
func (b *binWriter) floats(v []float64) {
	b.i64(int64(len(v)))
	for _, x := range v {
		b.f64(x)
	}
}
func (b *binWriter) ints(v []int) {
	b.i64(int64(len(v)))
	for _, x := range v {
		b.i64(int64(x))
	}
}
func (b *binWriter) int64s(v []int64) {
	b.i64(int64(len(v)))
	for _, x := range v {
		b.i64(x)
	}
}
func (b *binWriter) matrix(m *vec.Matrix) {
	if m == nil {
		b.i64(-1)
		return
	}
	b.i64(int64(m.Rows))
	b.i64(int64(m.Cols))
	for _, x := range m.Data {
		b.f64(x)
	}
}

func boolToU64(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) raw(p []byte) {
	if b.err != nil {
		return
	}
	_, b.err = io.ReadFull(b.r, p)
}

func (b *binReader) u64() uint64 {
	var buf [8]byte
	b.raw(buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (b *binReader) i64() int64   { return int64(b.u64()) }
func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }
func (b *binReader) bool() bool   { return b.u64() != 0 }

// length reads a slice length and validates it against a sane ceiling so
// corrupted files fail cleanly instead of OOMing.
func (b *binReader) length() int {
	n := b.i64()
	const maxLen = 1 << 31
	if n < -1 || n > maxLen {
		if b.err == nil {
			b.err = fmt.Errorf("core: implausible length %d in index file", n)
		}
		return 0
	}
	return int(n)
}

func (b *binReader) floats() []float64 {
	n := b.length()
	if b.err != nil || n < 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = b.f64()
	}
	return out
}

func (b *binReader) intsSlice() []int {
	n := b.length()
	if b.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(b.i64())
	}
	return out
}

func (b *binReader) int64s() []int64 {
	n := b.length()
	if b.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = b.i64()
	}
	return out
}

func (b *binReader) matrix() *vec.Matrix {
	rows := b.i64()
	if rows == -1 || b.err != nil {
		return nil
	}
	cols := b.i64()
	if b.err != nil {
		return nil
	}
	if rows < 0 || cols < 0 || (cols > 0 && rows > (1<<33)/cols) {
		b.err = fmt.Errorf("core: implausible matrix shape %d×%d in index file", rows, cols)
		return nil
	}
	m := vec.NewMatrix(int(rows), int(cols))
	for i := range m.Data {
		m.Data[i] = b.f64()
	}
	return m
}

// WriteTo serializes the index. It returns the number of bytes written.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := &binWriter{w: bufio.NewWriter(cw)}
	bw.raw([]byte(indexMagic))

	o := idx.opts
	bw.bool(o.SVD)
	bw.bool(o.Int)
	bw.bool(o.Reduction)
	bw.f64(o.Rho)
	bw.f64(o.E)
	bw.i64(int64(o.W))
	bw.f64(o.PruneSlack)
	bw.f64(o.RankTol)
	bw.bool(o.GlobalIntScaling)
	bw.bool(o.ReductionFirst)
	bw.bool(o.Unsorted)
	bw.bool(o.CompactInts)

	bw.i64(int64(idx.n))
	bw.i64(int64(idx.d))
	bw.i64(int64(idx.w))
	bw.ints(idx.perm)
	bw.floats(idx.norms)
	bw.matrix(idx.bar)
	bw.floats(idx.barTail)

	if idx.thin != nil {
		bw.bool(true)
		bw.matrix(idx.thin.U)
		bw.floats(idx.thin.Sigma)
	} else {
		bw.bool(false)
	}

	if id := idx.ints; id != nil {
		bw.bool(true)
		bw.f64(id.e)
		bw.f64(id.maxHead)
		bw.f64(id.maxTail)
		bw.f64(id.headScale)
		bw.f64(id.tailScale)
		bw.bool(id.floors16 != nil)
		if id.floors16 != nil {
			bw.i64(int64(len(id.floors16)))
			for _, f := range id.floors16 {
				bw.i64(int64(f))
			}
		} else {
			bw.i64(int64(len(id.floors)))
			for _, f := range id.floors {
				bw.i64(int64(f))
			}
		}
		bw.int64s(id.sumAbsHead)
		bw.int64s(id.sumAbsTail)
	} else {
		bw.bool(false)
	}

	if rd := idx.red; rd != nil {
		bw.bool(true)
		bw.floats(rd.c)
		bw.f64(rd.b)
		bw.f64(rd.sumC2)
		bw.floats(rd.headConstP)
		bw.floats(rd.hhTail)
	} else {
		bw.bool(false)
	}

	if bw.err == nil {
		bw.err = bw.w.Flush()
	}
	return cw.n, bw.err
}

// ReadIndex deserializes an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := &binReader{r: bufio.NewReader(r)}
	magic := make([]byte, 4)
	br.raw(magic)
	if br.err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", br.err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("core: bad index magic %q, want %q", magic, indexMagic)
	}

	var o Options
	o.SVD = br.bool()
	o.Int = br.bool()
	o.Reduction = br.bool()
	o.Rho = br.f64()
	o.E = br.f64()
	o.W = int(br.i64())
	o.PruneSlack = br.f64()
	o.RankTol = br.f64()
	o.GlobalIntScaling = br.bool()
	o.ReductionFirst = br.bool()
	o.Unsorted = br.bool()
	o.CompactInts = br.bool()

	idx := &Index{opts: o}
	idx.n = int(br.i64())
	idx.d = int(br.i64())
	idx.w = int(br.i64())
	idx.perm = br.intsSlice()
	idx.norms = br.floats()
	idx.bar = br.matrix()
	idx.barTail = br.floats()

	if br.bool() {
		thin := &svd.Thin{U: br.matrix(), Sigma: br.floats()}
		if idx.bar != nil {
			thin.V1 = idx.bar
		}
		idx.thin = thin
		idx.sigma = thin.Sigma
	}

	if br.bool() {
		id := &intData{}
		id.e = br.f64()
		id.maxHead = br.f64()
		id.maxTail = br.f64()
		id.headScale = br.f64()
		id.tailScale = br.f64()
		compact := br.bool()
		n := br.length()
		if br.err == nil {
			if compact {
				id.floors16 = make([]int16, n)
				for i := range id.floors16 {
					id.floors16[i] = int16(br.i64())
				}
			} else {
				id.floors = make([]int32, n)
				for i := range id.floors {
					id.floors[i] = int32(br.i64())
				}
			}
		}
		id.sumAbsHead = br.int64s()
		id.sumAbsTail = br.int64s()
		idx.ints = id
	}

	if br.bool() {
		rd := &redData{}
		rd.c = br.floats()
		rd.b = br.f64()
		rd.sumC2 = br.f64()
		rd.headConstP = br.floats()
		rd.hhTail = br.floats()
		idx.red = rd
	}

	if br.err != nil {
		return nil, fmt.Errorf("core: reading index: %w", br.err)
	}
	if err := idx.validateLoaded(); err != nil {
		return nil, err
	}
	return idx, nil
}

// validateLoaded sanity-checks structural consistency of a deserialized
// index so a truncated or corrupted file cannot cause panics later.
func (idx *Index) validateLoaded() error {
	if idx.n <= 0 || idx.d <= 0 || idx.w < 1 || idx.w > idx.d {
		return fmt.Errorf("core: loaded index has invalid shape n=%d d=%d w=%d", idx.n, idx.d, idx.w)
	}
	if idx.bar == nil || idx.bar.Rows != idx.n || idx.bar.Cols != idx.d {
		return fmt.Errorf("core: loaded index matrix shape mismatch")
	}
	if len(idx.perm) != idx.n || len(idx.norms) != idx.n || len(idx.barTail) != idx.n {
		return fmt.Errorf("core: loaded index per-item arrays mismatch n=%d", idx.n)
	}
	if idx.opts.SVD && (idx.thin == nil || idx.thin.U == nil || idx.thin.U.Rows != idx.d || len(idx.thin.Sigma) != idx.d) {
		return fmt.Errorf("core: loaded index missing SVD data")
	}
	if idx.opts.Int {
		id := idx.ints
		if id == nil || (len(id.floors) != idx.n*idx.d && len(id.floors16) != idx.n*idx.d) ||
			len(id.sumAbsHead) != idx.n || len(id.sumAbsTail) != idx.n {
			return fmt.Errorf("core: loaded index missing integer data")
		}
	}
	if idx.opts.Reduction {
		rd := idx.red
		if rd == nil || len(rd.c) != idx.d || len(rd.headConstP) != idx.n || len(rd.hhTail) != idx.n {
			return fmt.Errorf("core: loaded index missing reduction data")
		}
	}
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
