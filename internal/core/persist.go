package core

import (
	"fmt"
	"io"

	"fexipro/internal/snap"
	"fexipro/internal/svd"
)

// Index persistence: preprocessing costs O(n·d²) (thin SVD plus derived
// arrays), so a deployed service wants to preprocess once and load the
// finished index at startup. Indexes are written as fexsnap/v1
// containers (internal/snap, DESIGN.md §15): one checksummed section
// per component, so a damaged file fails with a typed error instead of
// loading a silently wrong index, and unknown sections from newer
// writers are skipped. Load rebuilds an Index that answers queries
// bit-identically to the one that was saved.

// Section tags of a core.Index snapshot.
const (
	secIdxMeta = "idx.meta" // Options + n/d/w
	secIdxPerm = "idx.perm" // norm-descending permutation
	secIdxNorm = "idx.norm" // item norms (permuted order)
	secIdxRows = "idx.rows" // transformed item matrix (bar)
	secIdxTail = "idx.tail" // per-item tail norms
	secIdxSVD  = "idx.svd"  // thin SVD basis (optional)
	secIdxInts = "idx.ints" // scaled-integer tables (optional)
	secIdxRed  = "idx.red"  // monotone reduction data (optional)
)

// Save writes the index as a fexsnap/v1 container.
func (idx *Index) Save(w io.Writer) error {
	var b snap.Builder
	b.Section(secIdxMeta, func(e *snap.Encoder) {
		encodeOptions(e, idx.opts)
		e.I64(int64(idx.n))
		e.I64(int64(idx.d))
		e.I64(int64(idx.w))
	})
	b.Section(secIdxPerm, func(e *snap.Encoder) { e.Ints(idx.perm) })
	b.Section(secIdxNorm, func(e *snap.Encoder) { e.Floats(idx.norms) })
	b.Section(secIdxRows, func(e *snap.Encoder) { e.Matrix(idx.bar) })
	b.Section(secIdxTail, func(e *snap.Encoder) { e.Floats(idx.barTail) })
	if idx.thin != nil {
		b.Section(secIdxSVD, func(e *snap.Encoder) {
			e.Matrix(idx.thin.U)
			e.Floats(idx.thin.Sigma)
		})
	}
	if id := idx.ints; id != nil {
		b.Section(secIdxInts, func(e *snap.Encoder) {
			e.F64(id.e)
			e.F64(id.maxHead)
			e.F64(id.maxTail)
			e.F64(id.headScale)
			e.F64(id.tailScale)
			e.Bool(id.floors16 != nil)
			if id.floors16 != nil {
				e.Int16s(id.floors16)
			} else {
				e.Int32s(id.floors)
			}
			e.Int64s(id.sumAbsHead)
			e.Int64s(id.sumAbsTail)
		})
	}
	if rd := idx.red; rd != nil {
		b.Section(secIdxRed, func(e *snap.Encoder) {
			e.Floats(rd.c)
			e.F64(rd.b)
			e.F64(rd.sumC2)
			e.Floats(rd.headConstP)
			e.Floats(rd.hhTail)
		})
	}
	return b.Flush(w)
}

// WriteTo serializes the index (fexsnap/v1) and returns the number of
// bytes written. It is Save with byte accounting, kept for the public
// SaveIndex API.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	err := idx.Save(cw)
	return cw.n, err
}

// encodeOptions and decodeOptions fix the on-disk field order of
// Options, shared by the static index and DynamicIndex snapshots.
func encodeOptions(e *snap.Encoder, o Options) {
	e.Bool(o.SVD)
	e.Bool(o.Int)
	e.Bool(o.Reduction)
	e.F64(o.Rho)
	e.F64(o.E)
	e.I64(int64(o.W))
	e.F64(o.PruneSlack)
	e.F64(o.RankTol)
	e.Bool(o.GlobalIntScaling)
	e.Bool(o.ReductionFirst)
	e.Bool(o.Unsorted)
	e.Bool(o.CompactInts)
}

func decodeOptions(d *snap.Decoder) Options {
	var o Options
	o.SVD = d.Bool()
	o.Int = d.Bool()
	o.Reduction = d.Bool()
	o.Rho = d.F64()
	o.E = d.F64()
	o.W = int(d.I64())
	o.PruneSlack = d.F64()
	o.RankTol = d.F64()
	o.GlobalIntScaling = d.Bool()
	o.ReductionFirst = d.Bool()
	o.Unsorted = d.Bool()
	o.CompactInts = d.Bool()
	return o
}

// sectionDecoder returns a Decoder over a mandatory section, or a typed
// error if the section is absent (a renamed/lost section reads as
// corruption: the bytes are there, the structure is not).
func sectionDecoder(f *snap.File, tag string) (*snap.Decoder, error) {
	payload, ok := f.Section(tag)
	if !ok {
		return nil, fmt.Errorf("%w: index snapshot missing section %q", snap.ErrChecksum, tag)
	}
	return snap.NewDecoder(payload), nil
}

// ReadIndex deserializes an index written by Save/WriteTo. Every error
// wraps one of snap.ErrBadMagic, snap.ErrChecksum, snap.ErrTruncated.
func ReadIndex(r io.Reader) (*Index, error) {
	f, err := snap.Read(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading index: %w", err)
	}
	return indexFromSnap(f)
}

func indexFromSnap(f *snap.File) (*Index, error) {
	d, err := sectionDecoder(f, secIdxMeta)
	if err != nil {
		return nil, err
	}
	idx := &Index{opts: decodeOptions(d)}
	idx.n = int(d.I64())
	idx.d = int(d.I64())
	idx.w = int(d.I64())
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("core: index meta: %w", err)
	}

	simple := []struct {
		tag string
		fn  func(d *snap.Decoder)
	}{
		{secIdxPerm, func(d *snap.Decoder) { idx.perm = d.Ints() }},
		{secIdxNorm, func(d *snap.Decoder) { idx.norms = d.Floats() }},
		{secIdxRows, func(d *snap.Decoder) { idx.bar = d.Matrix() }},
		{secIdxTail, func(d *snap.Decoder) { idx.barTail = d.Floats() }},
	}
	for _, s := range simple {
		d, err := sectionDecoder(f, s.tag)
		if err != nil {
			return nil, err
		}
		s.fn(d)
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("core: index section %q: %w", s.tag, err)
		}
	}

	if payload, ok := f.Section(secIdxSVD); ok {
		d := snap.NewDecoder(payload)
		thin := &svd.Thin{U: d.Matrix(), Sigma: d.Floats()}
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("core: index SVD section: %w", err)
		}
		if idx.bar != nil {
			thin.V1 = idx.bar
		}
		idx.thin = thin
		idx.sigma = thin.Sigma
	}

	if payload, ok := f.Section(secIdxInts); ok {
		d := snap.NewDecoder(payload)
		id := &intData{}
		id.e = d.F64()
		id.maxHead = d.F64()
		id.maxTail = d.F64()
		id.headScale = d.F64()
		id.tailScale = d.F64()
		if d.Bool() {
			id.floors16 = d.Int16s()
		} else {
			id.floors = d.Int32s()
		}
		id.sumAbsHead = d.Int64s()
		id.sumAbsTail = d.Int64s()
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("core: index integer section: %w", err)
		}
		idx.ints = id
	}

	if payload, ok := f.Section(secIdxRed); ok {
		d := snap.NewDecoder(payload)
		rd := &redData{}
		rd.c = d.Floats()
		rd.b = d.F64()
		rd.sumC2 = d.F64()
		rd.headConstP = d.Floats()
		rd.hhTail = d.Floats()
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("core: index reduction section: %w", err)
		}
		idx.red = rd
	}

	if err := idx.validateLoaded(); err != nil {
		return nil, err
	}
	return idx, nil
}

// validateLoaded sanity-checks structural consistency of a deserialized
// index so a truncated or corrupted file cannot cause panics later. The
// error wraps snap.ErrChecksum: the container parsed, the content lies.
func (idx *Index) validateLoaded() error {
	if idx.n <= 0 || idx.d <= 0 || idx.w < 1 || idx.w > idx.d {
		return fmt.Errorf("%w: loaded index has invalid shape n=%d d=%d w=%d", snap.ErrChecksum, idx.n, idx.d, idx.w)
	}
	if idx.bar == nil || idx.bar.Rows != idx.n || idx.bar.Cols != idx.d {
		return fmt.Errorf("%w: loaded index matrix shape mismatch", snap.ErrChecksum)
	}
	if len(idx.perm) != idx.n || len(idx.norms) != idx.n || len(idx.barTail) != idx.n {
		return fmt.Errorf("%w: loaded index per-item arrays mismatch n=%d", snap.ErrChecksum, idx.n)
	}
	if idx.opts.SVD && (idx.thin == nil || idx.thin.U == nil || idx.thin.U.Rows != idx.d || len(idx.thin.Sigma) != idx.d) {
		return fmt.Errorf("%w: loaded index missing SVD data", snap.ErrChecksum)
	}
	if idx.opts.Int {
		id := idx.ints
		if id == nil || (len(id.floors) != idx.n*idx.d && len(id.floors16) != idx.n*idx.d) ||
			len(id.sumAbsHead) != idx.n || len(id.sumAbsTail) != idx.n {
			return fmt.Errorf("%w: loaded index missing integer data", snap.ErrChecksum)
		}
	}
	if idx.opts.Reduction {
		rd := idx.red
		if rd == nil || len(rd.c) != idx.d || len(rd.headConstP) != idx.n || len(rd.hhTail) != idx.n {
			return fmt.Errorf("%w: loaded index missing reduction data", snap.ErrChecksum)
		}
	}
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
