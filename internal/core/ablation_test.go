package core_test

import (
	"math/rand"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/searchtest"
)

// Every ablation combination must remain EXACT — the switches trade
// speed, never correctness.
func TestAblationsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	items, _ := searchtest.RandomInstance(rng, 500, 16)
	base := core.Options{SVD: true, Int: true, Reduction: true}
	variants := map[string]core.Options{
		"global-int-scaling": func() core.Options { o := base; o.GlobalIntScaling = true; return o }(),
		"reduction-first":    func() core.Options { o := base; o.ReductionFirst = true; return o }(),
		"unsorted":           func() core.Options { o := base; o.Unsorted = true; return o }(),
		"all-ablations": func() core.Options {
			o := base
			o.GlobalIntScaling, o.ReductionFirst, o.Unsorted = true, true, true
			return o
		}(),
	}
	for name, opts := range variants {
		idx, err := core.NewIndex(items, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := core.NewRetriever(idx)
		for trial := 0; trial < 10; trial++ {
			q := make([]float64, 16)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			searchtest.CheckTopK(t, items, q, 5, r.Search(q, 5), name)
		}
	}
}

// Sorting must dominate the unsorted scan in length-pruning efficiency:
// the unsorted variant cannot early-terminate, so it scans at least as
// many candidates.
func TestUnsortedScansMore(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	items, q := searchtest.RandomInstance(rng, 3000, 12)
	base := core.Options{SVD: true, Int: true, Reduction: true}

	sorted, err := core.NewIndex(items, base)
	if err != nil {
		t.Fatal(err)
	}
	o := base
	o.Unsorted = true
	unsorted, err := core.NewIndex(items, o)
	if err != nil {
		t.Fatal(err)
	}

	rs := core.NewRetriever(sorted)
	ru := core.NewRetriever(unsorted)
	rs.Search(q, 1)
	ru.Search(q, 1)
	if ru.Stats().Scanned < rs.Stats().Scanned {
		t.Fatalf("unsorted scanned %d < sorted %d", ru.Stats().Scanned, rs.Stats().Scanned)
	}
}

// Per-part scaling (Eq. 7) must not be weaker than global scaling
// (Eq. 4) at pruning, aggregated over a query batch.
func TestPerPartScalingPrunesAtLeastAsWell(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	items, _ := searchtest.RandomInstance(rng, 4000, 24)
	base := core.Options{SVD: true, Int: true}
	perPart, err := core.NewIndex(items, base)
	if err != nil {
		t.Fatal(err)
	}
	o := base
	o.GlobalIntScaling = true
	global, err := core.NewIndex(items, o)
	if err != nil {
		t.Fatal(err)
	}
	rp, rg := core.NewRetriever(perPart), core.NewRetriever(global)
	var fullPer, fullGlob int
	for trial := 0; trial < 20; trial++ {
		q := make([]float64, 24)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		rp.Search(q, 1)
		rg.Search(q, 1)
		fullPer += rp.Stats().FullProducts
		fullGlob += rg.Stats().FullProducts
	}
	if fullPer > fullGlob {
		t.Fatalf("per-part scaling computed MORE full products (%d) than global (%d)", fullPer, fullGlob)
	}
}

// CompactInts (int16 floors) must be exact and produce identical pruning
// decisions to the int32 representation.
func TestCompactIntsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	items, _ := searchtest.RandomInstance(rng, 800, 20)
	wide, err := core.NewIndex(items, core.Options{SVD: true, Int: true, Reduction: true})
	if err != nil {
		t.Fatal(err)
	}
	compact, err := core.NewIndex(items, core.Options{SVD: true, Int: true, Reduction: true, CompactInts: true})
	if err != nil {
		t.Fatal(err)
	}
	rw, rc := core.NewRetriever(wide), core.NewRetriever(compact)
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, 20)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		got := rc.Search(q, 5)
		searchtest.CheckTopK(t, items, q, 5, got, "compact-ints")
		rw.Search(q, 5)
		if rw.Stats() != rc.Stats() {
			t.Fatalf("pruning decisions diverged: %+v vs %+v", rw.Stats(), rc.Stats())
		}
	}
}

// E too large for int16 must silently fall back to int32 and stay exact.
func TestCompactIntsOverflowFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	items, _ := searchtest.RandomInstance(rng, 200, 10)
	idx, err := core.NewIndex(items, core.Options{SVD: true, Int: true, CompactInts: true, E: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRetriever(idx)
	q := make([]float64, 10)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	searchtest.CheckTopK(t, items, q, 3, r.Search(q, 3), "compact-fallback")
}
