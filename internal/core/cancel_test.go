package core_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// TestRetrieverCancellation runs the shared cancellation property suite
// over every FEXIPRO variant: a scan cut short by an injected fault must
// never be flagged exact, and an unfired fault must leave results
// bitwise identical to the uncancelled baseline.
func TestRetrieverCancellation(t *testing.T) {
	for _, variant := range allVariants {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			searchtest.CheckCancellation(t, func(items *vec.Matrix) searchtest.FaultSearcher {
				idx, err := core.NewIndex(items, mustOptions(t, variant))
				if err != nil {
					t.Fatalf("NewIndex(%s): %v", variant, err)
				}
				return core.NewRetriever(idx)
			}, "Retriever/"+variant)
		})
	}
}

func mustOptions(t *testing.T, variant string) core.Options {
	t.Helper()
	opts, err := core.OptionsForVariant(variant)
	if err != nil {
		t.Fatalf("OptionsForVariant(%s): %v", variant, err)
	}
	return opts
}

// TestDynamicCancellation covers the two-tier searcher: cancellation can
// land in the delta scan or inside the main retriever, and both must
// surface as ErrDeadline with valid partial results.
func TestDynamicCancellation(t *testing.T) {
	searchtest.CheckCancellation(t, func(items *vec.Matrix) searchtest.FaultSearcher {
		di, err := core.NewDynamicIndex(items, mustOptions(t, "F-SIR"), 0.25)
		if err != nil {
			t.Fatalf("NewDynamicIndex: %v", err)
		}
		return di
	}, "Dynamic/F-SIR")
}

// TestDynamicHookSurvivesRebuild pins the SetFaultHook contract across
// main-index rebuilds: after enough mutations to trigger a rebuild, a
// cancellation fault installed before the rebuild still fires inside the
// rebuilt main retriever.
func TestDynamicHookSurvivesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	items, q := searchtest.RandomInstance(rng, 200, 8)
	di, err := core.NewDynamicIndex(items, mustOptions(t, "F-SIR"), 0.1)
	if err != nil {
		t.Fatalf("NewDynamicIndex: %v", err)
	}
	reg := faults.NewRegistry(31)
	hook := reg.Enable(faults.SiteScan, faults.Plan{CancelAtItem: 1})
	di.SetFaultHook(hook)

	// Mutate well past the 10% rebuild fraction so the main retriever is
	// replaced at least once while the hook is installed.
	for i := 0; i < 100; i++ {
		row := make([]float64, 8)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		id, err := di.Add(row)
		if err != nil {
			t.Fatalf("Add #%d: %v", i, err)
		}
		if i%2 == 0 {
			if err := di.Delete(id); err != nil {
				t.Fatalf("Delete %d: %v", id, err)
			}
		}
	}

	before := hook.Counts().Cancels
	_, err = di.SearchContext(context.Background(), q, 5)
	if !errors.Is(err, search.ErrDeadline) {
		t.Fatalf("post-rebuild SearchContext error = %v, want ErrDeadline", err)
	}
	if hook.Counts().Cancels <= before {
		t.Fatal("fault hook did not fire after rebuild: SetFaultHook was lost")
	}
}

// TestCancelledAboveNeverExact is the SearchAboveContext analogue of the
// top-k property: a threshold scan cut short must not return nil error,
// and its partial results must all be genuine above-threshold hits.
func TestCancelledAboveNeverExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	items, q := searchtest.RandomInstance(rng, 400, 16)
	idx, err := core.NewIndex(items, mustOptions(t, "F-SIR"))
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	r := core.NewRetriever(idx)
	const threshold = 0.5

	full, err := r.SearchAboveContext(context.Background(), q, threshold)
	if err != nil {
		t.Fatalf("uncancelled SearchAboveContext error: %v", err)
	}

	for trial := 0; trial < 20; trial++ {
		cancelAt := 1 + rng.Intn(600)
		reg := faults.NewRegistry(77 + int64(trial))
		hook := reg.Enable(faults.SiteScan, faults.Plan{CancelAtItem: cancelAt})
		r.SetFaultHook(hook)
		res, err := r.SearchAboveContext(context.Background(), q, threshold)
		r.SetFaultHook(nil)

		if hook.Counts().Cancels > 0 {
			if !errors.Is(err, search.ErrDeadline) {
				t.Fatalf("cancel at %d: err = %v, want ErrDeadline", cancelAt, err)
			}
			if len(res) > len(full) {
				t.Fatalf("cancel at %d: partial run returned %d hits, full run only %d",
					cancelAt, len(res), len(full))
			}
		} else if err != nil {
			t.Fatalf("unfired cancel at %d: err = %v", cancelAt, err)
		}
		for i, hit := range res {
			actual := vec.Dot(q, items.Row(hit.ID))
			if diff := actual - hit.Score; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("cancel at %d: hit %d score %v, true product %v", cancelAt, hit.ID, hit.Score, actual)
			}
			if actual < threshold {
				t.Fatalf("cancel at %d: hit %d score %v below threshold", cancelAt, hit.ID, actual)
			}
			if i > 0 && res[i-1].Score < hit.Score {
				t.Fatalf("cancel at %d: results unsorted at rank %d", cancelAt, i)
			}
		}
	}
}
