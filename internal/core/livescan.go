package core

import (
	"context"
	"fmt"

	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// LiveScan answers exact top-k over a DynamicIndex's live catalog by
// exhaustive inner products, with no index and no transform — the
// "don't index" arm of the query planner's scan-vs-index choice
// (DESIGN.md §16). It reads the catalog (items + tombstones) directly,
// so it always sees the current state, shares the owning server's
// serialization, and costs nothing at mutation time: no delta buffer,
// no rebuild, no preprocessing.
//
// LiveScan shares the DynamicIndex's fault hook (SetFaultHook on the
// index covers both), polls ctx every search.CheckStride items, and on
// cancellation returns the best-so-far partial top-k with an
// ErrDeadline-wrapping error — the same contract as every other
// searcher.
type LiveScan struct {
	di    *DynamicIndex
	stats search.Stats
}

// NewLiveScan returns an exhaustive-scan searcher over di's live
// catalog. It holds no state beyond per-query counters; all catalog
// reads go through di, so callers must serialize it with di's
// mutations exactly as they serialize di's own searches.
func NewLiveScan(di *DynamicIndex) *LiveScan { return &LiveScan{di: di} }

// Search returns the exact top-k over the live catalog.
func (l *LiveScan) Search(q []float64, k int) []topk.Result {
	res, _ := l.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext implements search.ContextSearcher.
func (l *LiveScan) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	di := l.di
	if len(q) != di.d {
		panic(fmt.Sprintf("core: query dim %d != %d", len(q), di.d))
	}
	l.stats = search.Stats{}
	if k <= 0 {
		return nil, nil
	}
	c := topk.New(k)
	done := ctx.Done()
	hook := di.hook
	for id := 0; id < di.items.Rows; id++ {
		if hook != nil || (done != nil && id&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, id); err != nil {
				return c.Results(), err
			}
		}
		if di.dead[id] {
			continue
		}
		l.stats.Scanned++
		l.stats.FullProducts++
		c.Push(id, vec.Dot(q, di.items.Row(id)))
	}
	return c.Results(), nil
}

// Stats reports the counters of the most recent query (not cumulative).
func (l *LiveScan) Stats() search.Stats { return l.stats }

var _ search.ContextSearcher = (*LiveScan)(nil)
