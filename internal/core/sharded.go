package core

import (
	"context"

	"fexipro/internal/engine"
	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
)

// Sharded adapts one globally-built Index to the engine.Kernel
// interface: the norm-sorted rows are partitioned into contiguous
// ranges and each shard runs Index.scanRange over its own range.
//
// The transform state (SVD basis, integer scaling, reduction constants,
// sort order, checking dimension w) is built ONCE over the full item
// matrix and shared read-only by every shard, so the per-item score
// arithmetic is bit-for-bit the same regardless of shard count — the
// foundation of the S-invariance guarantee. Partitioning only the SCAN
// keeps each shard a contiguous sub-range of the sorted order, so the
// sorted-scan length break stays valid within a shard.
type Sharded struct {
	idx  *Index
	part engine.Partition
}

// NewSharded partitions idx's sorted rows into (at most) shards
// contiguous ranges. shards < 1 is treated as 1.
func NewSharded(idx *Index, shards int) *Sharded {
	return &Sharded{idx: idx, part: engine.NewPartition(idx.n, shards)}
}

// Index returns the underlying (shared, immutable) index.
func (s *Sharded) Index() *Index { return s.idx }

// Shards implements engine.Kernel.
func (s *Sharded) Shards() int { return s.part.Shards() }

// Prepare implements engine.Kernel: it computes the per-query state
// (transformed query, norms, integer floors, reduction constants) once;
// the returned *queryState is read-only during scans and therefore safe
// to share across concurrently scanning shards.
func (s *Sharded) Prepare(q []float64) any {
	qs := s.idx.newQueryState()
	s.idx.prepareQuery(q, qs)
	return qs
}

// Scan implements engine.Kernel: one shard's slice of Algorithm 4's
// sorted scan, with strict pruning against the max of the local and
// shared thresholds.
func (s *Sharded) Scan(ctx context.Context, pq any, shard int, c *topk.Collector, shared *search.SharedThreshold, hook *faults.Hook) (search.Stats, error) {
	qs := pq.(*queryState)
	lo, hi := s.part.Range(shard)
	var st search.Stats
	err := s.idx.scanRange(ctx, hook, qs, lo, hi, c, shared, &st)
	return st, err
}

var _ engine.Kernel = (*Sharded)(nil)
