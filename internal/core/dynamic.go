package core

import (
	"context"
	"fmt"
	"math"

	"fexipro/internal/engine"
	"fexipro/internal/faults"
	"fexipro/internal/obs"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// DynamicIndex serves exact top-k retrieval over an item catalog that
// changes online — the deployment reality (new items arrive, items are
// retired) that a preprocessed index must absorb.
//
// The catalog is split into S shards by the stable mapping
// shard(id) = id mod S, and each shard is an independent two-tier
// structure: a preprocessed FEXIPRO index over the bulk of the shard's
// items, a small unindexed delta buffer scanned exhaustively, and
// tombstones for deletions. When a shard's pending changes exceed
// RebuildFraction of ITS indexed size, only that shard is rebuilt — an
// Add or Delete never pays for more than 1/S of the catalog, dropping
// the amortized rebuild cost by ~S× versus a monolithic index. Queries
// fan out across the shards through the sharded execution engine
// (DESIGN.md §11) and merge into the exact canonical global top-k.
//
// Unlike the static sharded kernels, per-shard preprocessing means each
// shard applies its OWN SVD/scaling transform, so scores agree with a
// monolithic index to within float tolerance but are not bit-comparable
// across shard counts. Results are still exact: every returned score is
// the item's verified inner product.
type DynamicIndex struct {
	opts    Options
	d       int
	rebuild float64

	items     *vec.Matrix // full catalog in insertion order (live + dead)
	dead      map[int]bool
	deadCount int // total live→dead transitions ever

	shards []*dynShard
	eng    *engine.Engine
	hook   *faults.Hook
	stats  search.Stats
}

// dynShard is one shard's two-tier state: its preprocessed main index
// over the shard's bulk, the delta buffer of not-yet-indexed additions,
// and the count of deletions hitting the current main since its build.
type dynShard struct {
	main       *Index
	ret        *Retriever // for SearchAbove; shares main
	mainIDs    []int      // catalog IDs covered by main (ascending; positions = index rows)
	delta      []int      // catalog IDs not yet in main
	deltaItems [][]float64
	deadInMain int
	rebuilds   int // number of times this shard's main index has been built
}

// DefaultRebuildFraction triggers a rebuild when a shard's pending
// changes exceed 20% of its indexed items.
const DefaultRebuildFraction = 0.2

// NewDynamicIndex starts a single-shard dynamic index from an initial
// catalog (may be empty: pass a 0×d matrix). rebuildFraction ≤ 0
// selects the default.
func NewDynamicIndex(initial *vec.Matrix, opts Options, rebuildFraction float64) (*DynamicIndex, error) {
	return NewDynamicIndexSharded(initial, opts, rebuildFraction, 1, 1)
}

// NewDynamicIndexSharded starts a dynamic index with `shards`
// independent catalog shards (values < 1 mean 1) queried through a pool
// of `workers` goroutines (clamped like engine.New). More shards cut
// the amortized rebuild cost of Add/Delete by ~shards×; single-item
// updates only ever rebuild the one shard that owns the item.
func NewDynamicIndexSharded(initial *vec.Matrix, opts Options, rebuildFraction float64, shards, workers int) (*DynamicIndex, error) {
	if initial.Cols <= 0 {
		return nil, fmt.Errorf("core: dynamic index needs a positive dimension, got %d", initial.Cols)
	}
	if rebuildFraction <= 0 {
		rebuildFraction = DefaultRebuildFraction
	}
	if shards < 1 {
		shards = 1
	}
	di := &DynamicIndex{
		opts:    opts.withDefaults(),
		d:       initial.Cols,
		rebuild: rebuildFraction,
		items:   initial.Clone(),
		dead:    make(map[int]bool),
		shards:  make([]*dynShard, shards),
	}
	for s := range di.shards {
		di.shards[s] = &dynShard{}
	}
	di.eng = engine.New(&dynKernel{di: di}, workers)
	if initial.Rows > 0 {
		for s := range di.shards {
			if err := di.rebuildShard(context.Background(), s); err != nil {
				return nil, err
			}
		}
	}
	return di, nil
}

// Len returns the number of live items.
func (di *DynamicIndex) Len() int { return di.items.Rows - di.deadCount }

// Shards returns the number of catalog shards.
func (di *DynamicIndex) Shards() int { return len(di.shards) }

// Rebuilds returns, per shard, how many times that shard's main index
// has been built (including the initial build). The sum across shards
// measures total rebuild work: with S shards a stream of updates
// triggers ~the same TOTAL number of rebuilds, but each one costs only
// ~1/S of a monolithic rebuild.
func (di *DynamicIndex) Rebuilds() []int {
	out := make([]int, len(di.shards))
	for s, sh := range di.shards {
		out[s] = sh.rebuilds
	}
	return out
}

// shardOf returns the shard owning catalog ID id (stable mapping).
func (di *DynamicIndex) shardOf(id int) *dynShard { return di.shards[id%len(di.shards)] }

// Add inserts an item and returns its stable catalog ID. Only the
// owning shard (id mod Shards) absorbs the update or rebuilds.
func (di *DynamicIndex) Add(item []float64) (int, error) {
	return di.AddContext(context.Background(), item)
}

// AddContext behaves like Add; when ctx carries an obs span the
// mutation's hidden cost — the owning shard's rebuild, if this update
// triggers one — is timed as a "rebuild" child span, so a slow-query
// log can tell a 50µs delta append from a 50ms one-shard rebuild.
func (di *DynamicIndex) AddContext(ctx context.Context, item []float64) (int, error) {
	if len(item) != di.d {
		return 0, fmt.Errorf("core: item dim %d != %d", len(item), di.d)
	}
	for s, v := range item {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("core: item coordinate %d is not finite", s)
		}
	}
	id := di.items.Rows
	grown := vec.NewMatrix(id+1, di.d)
	copy(grown.Data, di.items.Data)
	copy(grown.Row(id), item)
	di.items = grown
	sh := di.shardOf(id)
	sh.delta = append(sh.delta, id)
	sh.deltaItems = append(sh.deltaItems, vec.Clone(item))
	return id, di.maybeRebuild(ctx, id%len(di.shards))
}

// Delete retires an item by catalog ID. Deleting an unknown or already
// deleted ID is an error. Only the owning shard can be rebuilt.
func (di *DynamicIndex) Delete(id int) error {
	return di.DeleteContext(context.Background(), id)
}

// DeleteContext behaves like Delete with AddContext's span semantics.
func (di *DynamicIndex) DeleteContext(ctx context.Context, id int) error {
	if id < 0 || id >= di.items.Rows {
		return fmt.Errorf("core: delete of unknown item %d", id)
	}
	if di.dead[id] {
		return fmt.Errorf("core: item %d already deleted", id)
	}
	di.dead[id] = true
	di.deadCount++
	sh := di.shardOf(id)
	if sh.inMain(id) {
		sh.deadInMain++
	}
	return di.maybeRebuild(ctx, id%len(di.shards))
}

// inMain reports whether a catalog ID is covered by the shard's current
// main index (mainIDs is ascending by construction).
func (sh *dynShard) inMain(id int) bool {
	lo, hi := 0, len(sh.mainIDs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case sh.mainIDs[mid] == id:
			return true
		case sh.mainIDs[mid] < id:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// maybeRebuild rebuilds shard s when its pending changes exceed the
// rebuild fraction of its own indexed size.
func (di *DynamicIndex) maybeRebuild(ctx context.Context, s int) error {
	sh := di.shards[s]
	mainSize := len(sh.mainIDs)
	pending := len(sh.delta) + sh.deadInMain
	if mainSize == 0 || float64(pending) > di.rebuild*float64(mainSize) {
		return di.rebuildShard(ctx, s)
	}
	return nil
}

// rebuildShard folds shard s's delta and drops its tombstones into a
// fresh preprocessed index over only that shard's live items. A traced
// mutation (span in ctx) gets a "rebuild" child annotated with the
// shard, its live size, and the pending work that was folded in.
func (di *DynamicIndex) rebuildShard(ctx context.Context, s int) error {
	sh := di.shards[s]
	_, rsp := obs.StartSpan(ctx, "rebuild")
	if rsp != nil {
		rsp.AttrInt("shard", int64(s))
		rsp.AttrInt("deltaFolded", int64(len(sh.delta)))
		rsp.AttrInt("tombstonesDropped", int64(sh.deadInMain))
		defer rsp.End()
	}
	S := len(di.shards)
	live := make([]int, 0, (di.items.Rows+S-1)/S)
	for id := s; id < di.items.Rows; id += S {
		if !di.dead[id] {
			live = append(live, id)
		}
	}
	rsp.AttrInt("items", int64(len(live)))
	sh.delta = nil
	sh.deltaItems = nil
	sh.deadInMain = 0
	if len(live) == 0 {
		sh.main, sh.ret, sh.mainIDs = nil, nil, nil
		return nil
	}
	compact := vec.NewMatrix(len(live), di.d)
	for row, id := range live {
		copy(compact.Row(row), di.items.Row(id))
	}
	idx, err := NewIndex(compact, di.opts)
	if err != nil {
		return err
	}
	sh.main = idx
	sh.ret = NewRetriever(idx)
	sh.ret.SetFaultHook(di.hook)
	sh.mainIDs = live
	sh.rebuilds++
	// Tombstones for pre-rebuild IDs are now compacted away, but keep
	// the dead set for ID-validity checks.
	return nil
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook
// called once per scanned item in both the delta buffers and the main
// indexes (shard-locally); it survives rebuilds.
func (di *DynamicIndex) SetFaultHook(h *faults.Hook) {
	di.hook = h
	di.eng.SetFaultHook(h)
	for _, sh := range di.shards {
		if sh.ret != nil {
			sh.ret.SetFaultHook(h)
		}
	}
}

// SetShardObserver installs (or, with nil, removes) the engine's
// per-shard scan observer — one callback per completed shard scan with
// the shard index, its wall time, and its stage counters. Serving
// layers use it to expose per-shard latency (obs.ShardScanObserver).
func (di *DynamicIndex) SetShardObserver(o engine.Observer) { di.eng.SetObserver(o) }

// dynKernel routes DynamicIndex queries through the sharded execution
// engine: each shard scan covers one catalog shard's delta buffer and
// its main index, filtering tombstones and remapping index rows to
// stable catalog IDs before offering candidates.
type dynKernel struct {
	di *DynamicIndex
}

// dynQuery is the per-query state: the raw query for delta dots, plus
// one prepared FEXIPRO query state per shard with a main index (each
// shard's transform differs, so the states are per-shard).
type dynQuery struct {
	q      []float64
	states []*queryState
}

// Shards implements engine.Kernel.
func (k *dynKernel) Shards() int { return len(k.di.shards) }

// Prepare implements engine.Kernel.
func (k *dynKernel) Prepare(q []float64) any {
	if len(q) != k.di.d {
		panic(fmt.Sprintf("core: query dim %d != %d", len(q), k.di.d))
	}
	dq := &dynQuery{q: q, states: make([]*queryState, len(k.di.shards))}
	for s, sh := range k.di.shards {
		if sh.main != nil {
			qs := sh.main.newQueryState()
			sh.main.prepareQuery(q, qs)
			dq.states[s] = qs
		}
	}
	return dq
}

// Scan implements engine.Kernel: shard s's delta buffer exhaustively,
// then its main index with a (k + deadInMain) over-fetch so tombstoned
// rows inside main cannot starve the live result set. Poll/fault
// indices are shard-local.
func (k *dynKernel) Scan(ctx context.Context, pq any, shard int, c *topk.Collector, shared *search.SharedThreshold, hook *faults.Hook) (search.Stats, error) {
	di := k.di
	sh := di.shards[shard]
	dq := pq.(*dynQuery)
	var st search.Stats
	done := ctx.Done()
	for pos, id := range sh.delta {
		if hook != nil || (done != nil && pos&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, pos); err != nil {
				return st, err
			}
		}
		if di.dead[id] {
			continue
		}
		st.Scanned++
		st.FullProducts++
		if c.Push(id, vec.Dot(dq.q, sh.deltaItems[pos])) && c.Len() == c.K() {
			shared.Publish(c.Threshold())
		}
	}
	if sh.main == nil {
		return st, nil
	}
	// The inner collector's (k + deadInMain)-th threshold is still a
	// valid global lower bound — at most deadInMain of its retained
	// items are dead, so at least k live items score at or above it —
	// which lets the main scan both publish to and prune against the
	// engine's shared threshold.
	inner := topk.New(c.K() + sh.deadInMain)
	err := sh.main.scanRange(ctx, hook, dq.states[shard], 0, sh.main.n, inner, shared, &st)
	// The merge below is bounded by the k+deadInMain results the inner
	// collector retained; the cancellable work happened in scanRange.
	//lint:ignore ctxpoll bounded merge of ≤ k+deadInMain retained results
	for _, r := range inner.Results() {
		id := sh.mainIDs[r.ID]
		if di.dead[id] {
			continue
		}
		if c.Push(id, r.Score) && c.Len() == c.K() {
			shared.Publish(c.Threshold())
		}
	}
	return st, err
}

var _ engine.Kernel = (*dynKernel)(nil)

// Search returns the exact top-k over the live catalog; IDs are the
// stable catalog IDs returned by Add (or initial row indices).
func (di *DynamicIndex) Search(q []float64, k int) []topk.Result {
	res, _ := di.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext implements search.ContextSearcher: all shards (delta
// buffers and main indexes) poll ctx and a cancellation merges every
// shard's best-so-far into a partial top-k returned with an
// ErrDeadline-wrapping error.
func (di *DynamicIndex) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	if len(q) != di.d {
		panic(fmt.Sprintf("core: query dim %d != %d", len(q), di.d))
	}
	di.stats = search.Stats{}
	if k <= 0 {
		return nil, nil
	}
	res, err := di.eng.SearchContext(ctx, q, k)
	di.stats = di.eng.Stats()
	return res, err
}

// SearchAbove returns every live item with qᵀp ≥ t, sorted by descending
// score.
func (di *DynamicIndex) SearchAbove(q []float64, t float64) []topk.Result {
	res, _ := di.SearchAboveContext(context.Background(), q, t)
	return res
}

// SearchAboveContext behaves like SearchAbove but honours ctx in every
// shard, returning the sorted partial result set with an
// ErrDeadline-wrapping error on cancellation.
func (di *DynamicIndex) SearchAboveContext(ctx context.Context, q []float64, t float64) ([]topk.Result, error) {
	if len(q) != di.d {
		panic(fmt.Sprintf("core: query dim %d != %d", len(q), di.d))
	}
	di.stats = search.Stats{}
	done := ctx.Done()
	hook := di.hook
	var out []topk.Result
	for _, sh := range di.shards {
		for pos, id := range sh.delta {
			if hook != nil || (done != nil && pos&search.StrideMask == 0) {
				if err := search.Poll(ctx, hook, pos); err != nil {
					topk.SortResults(out)
					return out, err
				}
			}
			if di.dead[id] {
				continue
			}
			di.stats.Scanned++
			di.stats.FullProducts++
			if v := vec.Dot(q, sh.deltaItems[pos]); v >= t {
				out = append(out, topk.Result{ID: id, Score: v})
			}
		}
		if sh.ret == nil {
			continue
		}
		res, err := sh.ret.SearchAboveContext(ctx, q, t)
		for _, r := range res {
			id := sh.mainIDs[r.ID]
			if di.dead[id] {
				continue
			}
			out = append(out, topk.Result{ID: id, Score: r.Score})
		}
		di.stats.Add(sh.ret.Stats())
		if err != nil {
			topk.SortResults(out)
			return out, err
		}
	}
	topk.SortResults(out)
	return out, nil
}

// Stats implements search.Searcher with the same per-query semantics as
// Retriever.Stats(): the counters cover ONLY the most recent
// Search/SearchContext/SearchAbove/SearchAboveContext call (they are
// reset at the start of each query and are NOT cumulative across
// queries). For sharded instances the counters are the sum over every
// shard's delta and main scans for that one query.
func (di *DynamicIndex) Stats() search.Stats { return di.stats }

var _ search.ContextSearcher = (*DynamicIndex)(nil)
