package core

import (
	"context"
	"fmt"
	"math"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// DynamicIndex serves exact top-k retrieval over an item catalog that
// changes online — the deployment reality (new items arrive, items are
// retired) that a preprocessed index must absorb. It is a two-tier
// design: a preprocessed FEXIPRO index over the bulk of the catalog, a
// small unindexed delta buffer scanned exhaustively, and a tombstone set
// for deletions. When the delta or tombstones exceed RebuildFraction of
// the indexed size the main index is rebuilt (amortized O(d²) per
// update, the same bound as the paper's per-query transformation cost).
type DynamicIndex struct {
	opts    Options
	d       int
	rebuild float64

	items      *vec.Matrix // full catalog in insertion order (live + dead)
	dead       map[int]bool
	deadCount  int // total live→dead transitions ever
	deadInMain int // deletions hitting the current main index since its build
	main       *Index
	mainRet    *Retriever
	mainIDs    []int // catalog IDs covered by main (ascending; positions = index rows)
	delta      []int // catalog IDs not yet in main
	deltaItems [][]float64
	hook       *faults.Hook
	stats      search.Stats
}

// DefaultRebuildFraction triggers a rebuild when pending changes exceed
// 20% of the indexed items.
const DefaultRebuildFraction = 0.2

// NewDynamicIndex starts a dynamic index from an initial catalog (may be
// empty: pass a 0×d matrix). rebuildFraction ≤ 0 selects the default.
func NewDynamicIndex(initial *vec.Matrix, opts Options, rebuildFraction float64) (*DynamicIndex, error) {
	if initial.Cols <= 0 {
		return nil, fmt.Errorf("core: dynamic index needs a positive dimension, got %d", initial.Cols)
	}
	if rebuildFraction <= 0 {
		rebuildFraction = DefaultRebuildFraction
	}
	di := &DynamicIndex{
		opts:    opts.withDefaults(),
		d:       initial.Cols,
		rebuild: rebuildFraction,
		items:   initial.Clone(),
		dead:    make(map[int]bool),
	}
	if initial.Rows > 0 {
		if err := di.rebuildMain(); err != nil {
			return nil, err
		}
	}
	return di, nil
}

// Len returns the number of live items.
func (di *DynamicIndex) Len() int { return di.items.Rows - di.deadCount }

// Add inserts an item and returns its stable catalog ID.
func (di *DynamicIndex) Add(item []float64) (int, error) {
	if len(item) != di.d {
		return 0, fmt.Errorf("core: item dim %d != %d", len(item), di.d)
	}
	for s, v := range item {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("core: item coordinate %d is not finite", s)
		}
	}
	id := di.items.Rows
	grown := vec.NewMatrix(id+1, di.d)
	copy(grown.Data, di.items.Data)
	copy(grown.Row(id), item)
	di.items = grown
	di.delta = append(di.delta, id)
	di.deltaItems = append(di.deltaItems, vec.Clone(item))
	return id, di.maybeRebuild()
}

// Delete retires an item by catalog ID. Deleting an unknown or already
// deleted ID is an error.
func (di *DynamicIndex) Delete(id int) error {
	if id < 0 || id >= di.items.Rows {
		return fmt.Errorf("core: delete of unknown item %d", id)
	}
	if di.dead[id] {
		return fmt.Errorf("core: item %d already deleted", id)
	}
	di.dead[id] = true
	di.deadCount++
	if di.inMain(id) {
		di.deadInMain++
	}
	return di.maybeRebuild()
}

// inMain reports whether a catalog ID is covered by the current main
// index (mainIDs is ascending by construction).
func (di *DynamicIndex) inMain(id int) bool {
	lo, hi := 0, len(di.mainIDs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case di.mainIDs[mid] == id:
			return true
		case di.mainIDs[mid] < id:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

func (di *DynamicIndex) maybeRebuild() error {
	mainSize := len(di.mainIDs)
	pending := len(di.delta) + di.deadInMain
	if mainSize == 0 || float64(pending) > di.rebuild*float64(mainSize) {
		return di.rebuildMain()
	}
	return nil
}

// rebuildMain folds the delta and drops tombstones into a fresh
// preprocessed index.
func (di *DynamicIndex) rebuildMain() error {
	live := make([]int, 0, di.Len())
	for id := 0; id < di.items.Rows; id++ {
		if !di.dead[id] {
			live = append(live, id)
		}
	}
	di.delta = nil
	di.deltaItems = nil
	di.deadInMain = 0
	if len(live) == 0 {
		di.main, di.mainRet, di.mainIDs = nil, nil, nil
		return nil
	}
	compact := vec.NewMatrix(len(live), di.d)
	for row, id := range live {
		copy(compact.Row(row), di.items.Row(id))
	}
	idx, err := NewIndex(compact, di.opts)
	if err != nil {
		return err
	}
	di.main = idx
	di.mainRet = NewRetriever(idx)
	di.mainRet.SetFaultHook(di.hook)
	di.mainIDs = live
	// Tombstones for pre-rebuild IDs are now compacted away, but keep
	// the dead set for ID-validity checks.
	return nil
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook
// called once per scanned item in both the delta buffer and the main
// index; it survives rebuilds.
func (di *DynamicIndex) SetFaultHook(h *faults.Hook) {
	di.hook = h
	if di.mainRet != nil {
		di.mainRet.SetFaultHook(h)
	}
}

// Search returns the exact top-k over the live catalog; IDs are the
// stable catalog IDs returned by Add (or initial row indices).
func (di *DynamicIndex) Search(q []float64, k int) []topk.Result {
	res, _ := di.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext implements search.ContextSearcher: both tiers poll ctx
// and a cancellation returns the best-so-far partial top-k with an
// ErrDeadline-wrapping error.
func (di *DynamicIndex) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	if len(q) != di.d {
		panic(fmt.Sprintf("core: query dim %d != %d", len(q), di.d))
	}
	di.stats = search.Stats{}
	c := topk.New(k)
	done := ctx.Done()
	hook := di.hook
	// Scan the (small) delta buffer exhaustively first.
	for pos, id := range di.delta {
		if hook != nil || (done != nil && pos&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, pos); err != nil {
				return c.Results(), err
			}
		}
		if di.dead[id] {
			continue
		}
		di.stats.Scanned++
		di.stats.FullProducts++
		c.Push(id, vec.Dot(q, di.deltaItems[pos]))
	}
	if di.mainRet != nil {
		// Over-fetch so tombstoned rows inside main cannot starve the
		// result set.
		need := k + di.deadInMain
		res, err := di.mainRet.SearchContext(ctx, q, need)
		for _, r := range res {
			id := di.mainIDs[r.ID]
			if di.dead[id] {
				continue
			}
			c.Push(id, r.Score)
		}
		di.stats.Add(di.mainRet.Stats())
		if err != nil {
			return c.Results(), err
		}
	}
	return c.Results(), nil
}

// SearchAbove returns every live item with qᵀp ≥ t, sorted by descending
// score.
func (di *DynamicIndex) SearchAbove(q []float64, t float64) []topk.Result {
	res, _ := di.SearchAboveContext(context.Background(), q, t)
	return res
}

// SearchAboveContext behaves like SearchAbove but honours ctx in both
// tiers, returning the sorted partial result set with an
// ErrDeadline-wrapping error on cancellation.
func (di *DynamicIndex) SearchAboveContext(ctx context.Context, q []float64, t float64) ([]topk.Result, error) {
	if len(q) != di.d {
		panic(fmt.Sprintf("core: query dim %d != %d", len(q), di.d))
	}
	di.stats = search.Stats{}
	done := ctx.Done()
	hook := di.hook
	var out []topk.Result
	for pos, id := range di.delta {
		if hook != nil || (done != nil && pos&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, pos); err != nil {
				topk.SortResults(out)
				return out, err
			}
		}
		if di.dead[id] {
			continue
		}
		di.stats.Scanned++
		di.stats.FullProducts++
		if v := vec.Dot(q, di.deltaItems[pos]); v >= t {
			out = append(out, topk.Result{ID: id, Score: v})
		}
	}
	if di.mainRet != nil {
		res, err := di.mainRet.SearchAboveContext(ctx, q, t)
		for _, r := range res {
			id := di.mainIDs[r.ID]
			if di.dead[id] {
				continue
			}
			out = append(out, topk.Result{ID: id, Score: r.Score})
		}
		di.stats.Add(di.mainRet.Stats())
		if err != nil {
			topk.SortResults(out)
			return out, err
		}
	}
	topk.SortResults(out)
	return out, nil
}

// Stats implements search.Searcher.
func (di *DynamicIndex) Stats() search.Stats { return di.stats }

var _ search.ContextSearcher = (*DynamicIndex)(nil)
