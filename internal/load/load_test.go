package load_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
	"time"

	"fexipro/internal/core"
	"fexipro/internal/load"
	"fexipro/internal/server"
	"fexipro/internal/vec"
)

func TestQueryVectorDeterministic(t *testing.T) {
	a := load.QueryVector(7, 12345, 16)
	b := load.QueryVector(7, 12345, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, user, dim) gave different vectors")
	}
	c := load.QueryVector(7, 12346, 16)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different users gave identical vectors")
	}
	d := load.QueryVector(8, 12345, 16)
	if reflect.DeepEqual(a, d) {
		t.Fatal("different seeds gave identical vectors")
	}
}

func TestReportRoundTrip(t *testing.T) {
	in := &load.Report{
		Schema: load.Schema,
		Target: "http://example:8080",
		Workload: load.Workload{
			Rate: 200, DurationMs: 5000, Users: 1_000_000, ZipfS: 1.2,
			K: 10, Dim: 16, MutateEvery: 10, Seed: 42,
		},
		Sent: 1000, Completed: 990, Shed: 10, Errors: 2,
		ByStatus: map[string]int{"2xx": 985, "4xx": 3},
		Searches: 890, Adds: 50, Deletes: 48, Partials: 4,
		ElapsedMs: 5100.25, AchievedQPS: 194.1,
		LatencyMs: load.Latency{Mean: 1.5, P50: 1.2, P95: 3.4, P99: 8.8, P999: 20.1, Max: 25.5},
		SLOs: []load.SLOResult{
			{Objective: "10ms", ObjectiveMs: 10, Violations: 7, BurnRate: 7.0 / 890},
			{Objective: "50ms", ObjectiveMs: 50, Violations: 0, BurnRate: 0},
		},
	}
	raw, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var out load.Report
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Fatalf("round trip changed the report:\nin:  %+v\nout: %+v", in, &out)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
}

func TestReportValidate(t *testing.T) {
	base := func() *load.Report {
		return &load.Report{
			Schema: load.Schema, Target: "http://x",
			Sent: 10, Completed: 10, Searches: 10,
			SLOs: []load.SLOResult{{Objective: "10ms", ObjectiveMs: 10}},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := base()
	bad.Schema = "fexload/v0"
	if bad.Validate() == nil {
		t.Fatal("wrong schema accepted")
	}
	bad = base()
	bad.Completed = 11
	if bad.Validate() == nil {
		t.Fatal("completed > sent accepted")
	}
	bad = base()
	bad.Searches = 7 // adds+deletes+errors still 0
	if bad.Validate() == nil {
		t.Fatal("op counts != completed accepted")
	}
	bad = base()
	bad.SLOs = nil
	if bad.Validate() == nil {
		t.Fatal("missing SLO results accepted")
	}
	bad = base()
	bad.Plan = &load.PlanReport{Mode: "auto"}
	if bad.Validate() == nil {
		t.Fatal("plan block without candidates accepted")
	}
	bad = base()
	bad.Plan = &load.PlanReport{Mode: "auto", Candidates: []string{"F-SIR", "Naive"}}
	bad.Plan.Summary.Queries = 3 // no per-method rows account for them
	if bad.Validate() == nil {
		t.Fatal("inconsistent plan decision counts accepted")
	}
}

// TestRunSmoke drives a real in-process fexserve with searches and
// interleaved mutations and checks the report is internally
// consistent: the smoke-level acceptance of the generator.
func TestRunSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := vec.NewMatrix(300, 8)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	srv, err := server.NewWithConfig(items, core.Options{SVD: true, Int: true, Reduction: true}, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := load.Run(context.Background(), load.Config{
		Target:      ts.URL,
		Dim:         8,
		Rate:        400,
		Duration:    500 * time.Millisecond,
		Users:       10_000,
		K:           5,
		MutateEvery: 10,
		BurstEvery:  200 * time.Millisecond,
		BurstDur:    50 * time.Millisecond,
		BurstFactor: 2,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v\n%+v", err, rep)
	}
	if rep.Searches == 0 {
		t.Fatalf("no searches completed: %+v", rep)
	}
	if rep.Adds == 0 {
		t.Fatalf("no mutations despite MutateEvery: %+v", rep)
	}
	if rep.Errors > 0 {
		t.Fatalf("transport errors against healthy in-process server: %+v", rep)
	}
	if rep.ByStatus["2xx"] == 0 {
		t.Fatalf("no 2xx responses: %+v", rep)
	}
	if rep.LatencyMs.P50 <= 0 || rep.LatencyMs.Max < rep.LatencyMs.P999 ||
		rep.LatencyMs.P999 < rep.LatencyMs.P50 {
		t.Fatalf("latency summary inconsistent: %+v", rep.LatencyMs)
	}
	if rep.AchievedQPS <= 0 {
		t.Fatalf("achieved QPS not positive: %+v", rep)
	}
	// fexload/v1 must survive the disk round trip (the -slojson
	// contract).
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back load.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped run report invalid: %v", err)
	}
	// A fixed-method server has no planner: /v1/plan answers 404 and
	// the report's plan block stays null.
	if rep.Plan != nil {
		t.Fatalf("plan block present against fixed-method server: %+v", rep.Plan)
	}
}

// TestRunPlanBlock: against a `-method auto` server the report carries
// the planner's decision summary, and it accounts for every routed
// query.
func TestRunPlanBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := vec.NewMatrix(300, 8)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	srv, err := server.NewWithConfig(items, core.Options{SVD: true, Int: true, Reduction: true},
		server.Config{Method: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := load.Run(context.Background(), load.Config{
		Target:   ts.URL,
		Dim:      8,
		Rate:     300,
		Duration: 400 * time.Millisecond,
		Users:    1_000,
		K:        5,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v\n%+v", err, rep)
	}
	if rep.Plan == nil {
		t.Fatal("no plan block against auto-method server")
	}
	if rep.Plan.Mode != "auto" || len(rep.Plan.Candidates) == 0 {
		t.Fatalf("plan block malformed: %+v", rep.Plan)
	}
	if rep.Searches > 0 && rep.Plan.Summary.Queries == 0 {
		t.Fatalf("searches completed but planner recorded no decisions: %+v", rep.Plan)
	}
}

// TestRunCancel: cancelling the context stops arrival generation
// promptly instead of running out the full duration.
func TestRunCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := vec.NewMatrix(50, 4)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	srv, err := server.New(items, core.Options{SVD: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := load.Run(ctx, load.Config{
		Target: ts.URL, Dim: 4, Rate: 50, Duration: time.Hour, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancelled run took %v", took)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("cancelled run report invalid: %v", err)
	}
}

// TestRunJoinsGoroutines: everything Run starts — sender goroutines
// and its own client's transport keep-alive goroutines — must be gone
// by the time Run returns, so fexload can write its -slojson report
// knowing no stragglers are still mutating the tally. The goroutine
// count is allowed a short settling window (conn teardown on the
// httptest server side is asynchronous), but must return to its
// pre-run level.
func TestRunJoinsGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := vec.NewMatrix(50, 4)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	srv, err := server.New(items, core.Options{SVD: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := runtime.NumGoroutine()
	rep, err := load.Run(context.Background(), load.Config{
		Target: ts.URL, Dim: 4, Rate: 400, Duration: 300 * time.Millisecond,
		MutateEvery: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatalf("no requests completed, nothing exercised: %+v", rep)
	}

	deadline := time.Now().Add(10 * time.Second)
	n := runtime.NumGoroutine()
	for n > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines did not settle after Run: %d before, %d now\n%s",
			before, n, buf[:runtime.Stack(buf, true)])
	}
}
