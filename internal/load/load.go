// Package load is an open-loop HTTP traffic generator for fexserve: it
// schedules query arrivals from a configured rate — independent of how
// fast the server answers, so a slow server accumulates in-flight work
// instead of silently throttling the offered load (the coordinated-
// omission trap of closed-loop benchmarks) — and reports client-side
// latency quantiles and SLO burn in a JSON schema diffable against the
// repo's benchmark dumps.
//
// The query mix is a zipfian distribution over a large synthetic user
// population: each arrival draws a user ID, derives that user's query
// vector deterministically from the run seed, and POSTs /v1/search.
// Optionally every Nth arrival is instead a catalog mutation
// (alternating POST /v1/items and DELETE /v1/items/{id}), and burst
// phases periodically multiply the arrival rate to probe shedding and
// tail behavior under overload.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"fexipro/internal/obs"
	"fexipro/internal/plan"
)

// Schema identifies the Report wire format.
const Schema = "fexload/v1"

// Config describes one load run. Target and Dim are required; zero
// values elsewhere select the documented defaults.
type Config struct {
	// Target is the base URL of a running fexserve (no trailing slash).
	Target string
	// Dim is the query dimensionality; must match the target index.
	Dim int

	// Rate is the offered load in arrivals per second (default 100).
	Rate float64
	// Duration is how long arrivals are generated (default 5s).
	Duration time.Duration

	// Users is the synthetic user population size (default 1e6). Query
	// popularity over it is zipfian: user 0 is the head of the
	// distribution, the tail is drawn rarely.
	Users int
	// ZipfS is the zipf skew exponent, > 1 (default 1.2).
	ZipfS float64
	// K is the top-k of every search (default 10).
	K int

	// MutateEvery makes every Nth arrival a catalog mutation instead of
	// a search, alternating adds and deletes; 0 disables mutations.
	MutateEvery int

	// BurstEvery/BurstDur/BurstFactor define periodic burst phases: for
	// BurstDur out of every BurstEvery, the arrival rate is multiplied
	// by BurstFactor. BurstEvery 0 disables bursts.
	BurstEvery  time.Duration
	BurstDur    time.Duration
	BurstFactor float64

	// MaxInFlight bounds concurrently outstanding requests (default
	// 1024). An arrival that finds the limit exhausted is counted as
	// shed by the CLIENT — offered load the server never saw — and is
	// not retried (open loop).
	MaxInFlight int
	// Timeout is the per-request client timeout (default 2s).
	Timeout time.Duration

	// SLOs are the client-side latency objectives reported as burn
	// counts over the completed searches (default 10ms, 50ms, 250ms).
	SLOs []time.Duration

	// Seed makes the run reproducible: the arrival mix, the zipf draws,
	// and every synthetic query vector derive from it (default 1).
	Seed int64

	// Client overrides the HTTP client (tests); nil builds one from
	// Timeout.
	//lint:ignore apiparity test-only injection surface, deliberately unreachable from flags
	Client *http.Client

	// ownsClient marks a Client that applyDefaults built: Run closes
	// its idle connections on the way out so transport keep-alive
	// goroutines do not outlive the run. Caller-provided clients are
	// left alone.
	ownsClient bool
}

func (c *Config) applyDefaults() error {
	if c.Target == "" {
		return fmt.Errorf("load: Target is required")
	}
	if c.Dim <= 0 {
		return fmt.Errorf("load: Dim must be positive, got %d", c.Dim)
	}
	if c.Rate <= 0 {
		c.Rate = 100
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Users <= 0 {
		c.Users = 1_000_000
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1024
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if len(c.SLOs) == 0 {
		c.SLOs = []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 250 * time.Millisecond}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BurstEvery > 0 {
		if c.BurstDur <= 0 || c.BurstDur > c.BurstEvery {
			c.BurstDur = c.BurstEvery / 5
		}
		if c.BurstFactor <= 1 {
			c.BurstFactor = 4
		}
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.Timeout}
		c.ownsClient = true
	}
	return nil
}

// Workload echoes the effective run parameters into the report, so a
// dump is self-describing and two dumps are diffable only when they
// measured the same thing.
type Workload struct {
	Rate         float64 `json:"rate"`
	DurationMs   float64 `json:"durationMs"`
	Users        int     `json:"users"`
	ZipfS        float64 `json:"zipfS"`
	K            int     `json:"k"`
	Dim          int     `json:"dim"`
	MutateEvery  int     `json:"mutateEvery,omitempty"`
	BurstEveryMs float64 `json:"burstEveryMs,omitempty"`
	BurstDurMs   float64 `json:"burstDurMs,omitempty"`
	BurstFactor  float64 `json:"burstFactor,omitempty"`
	Seed         int64   `json:"seed"`
}

// Latency summarizes the completed searches' client-observed latency
// in milliseconds. Quantiles are exact order statistics over every
// completed search, not bucket interpolations.
type Latency struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// SLOResult is one objective's client-side burn over the run.
type SLOResult struct {
	Objective   string  `json:"objective"`
	ObjectiveMs float64 `json:"objectiveMs"`
	Violations  int     `json:"violations"`
	// BurnRate is Violations over completed searches (0 when none
	// completed).
	BurnRate float64 `json:"burnRate"`
}

// Report is the -slojson output: the fexload/v1 schema.
type Report struct {
	Schema string `json:"schema"`
	// GoVersion and GCFlags identify the toolchain the generator was
	// built with (obs.Toolchain), so latency-trajectory diffs between
	// runs are attributable to compiler changes, not just code.
	GoVersion string   `json:"goVersion,omitempty"`
	GCFlags   string   `json:"gcflags,omitempty"`
	Target    string   `json:"target"`
	Workload  Workload `json:"workload"`

	// Sent is every scheduled arrival that was dispatched; Shed counts
	// arrivals dropped at the client by MaxInFlight; Errors counts
	// transport failures (no HTTP status).
	Sent      int            `json:"sent"`
	Completed int            `json:"completed"`
	Shed      int            `json:"shed"`
	Errors    int            `json:"errors"`
	ByStatus  map[string]int `json:"byStatus"`

	Searches int `json:"searches"`
	Adds     int `json:"adds"`
	Deletes  int `json:"deletes"`
	// Partials counts 200 search responses flagged "exact": false
	// (deadline-expired best-so-far answers under -partial servers).
	Partials int `json:"partials"`

	ElapsedMs   float64 `json:"elapsedMs"`
	AchievedQPS float64 `json:"achievedQps"`

	LatencyMs Latency     `json:"latencyMs"`
	SLOs      []SLOResult `json:"slos"`

	// Plan is the target's query-planner state (GET /v1/plan), fetched
	// once after the run completes. Present only when the server runs
	// `-method auto`; a fixed-method target answers 404 and the field
	// stays null. It attributes the run's latency profile to routing:
	// which methods answered, why, and how calibrated the cost model was.
	Plan *PlanReport `json:"plan,omitempty"`
}

// PlanReport mirrors the server's /v1/plan answer: the planner mode,
// the candidate pool, and the per-method decision summary in the same
// plan.Summary schema fexbench -statsjson embeds.
type PlanReport struct {
	Mode       string       `json:"mode"`
	Candidates []string     `json:"candidates"`
	Summary    plan.Summary `json:"summary"`
}

// Validate checks a decoded report for schema conformance — the
// round-trip contract of -slojson consumers.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("load: report schema %q, want %q", r.Schema, Schema)
	}
	if r.Target == "" {
		return fmt.Errorf("load: report has no target")
	}
	if r.Sent < 0 || r.Completed < 0 || r.Completed > r.Sent {
		return fmt.Errorf("load: inconsistent counts: sent %d completed %d", r.Sent, r.Completed)
	}
	if got := r.Searches + r.Adds + r.Deletes + r.Errors; got != r.Completed {
		return fmt.Errorf("load: op counts %d != completed %d", got, r.Completed)
	}
	if len(r.SLOs) == 0 {
		return fmt.Errorf("load: report has no SLO results")
	}
	for _, s := range r.SLOs {
		if s.Violations > r.Searches {
			return fmt.Errorf("load: SLO %s violations %d exceed searches %d", s.Objective, s.Violations, r.Searches)
		}
	}
	if r.Plan != nil {
		if r.Plan.Mode == "" || len(r.Plan.Candidates) == 0 {
			return fmt.Errorf("load: plan block missing mode or candidates")
		}
		var decided int64
		for _, m := range r.Plan.Summary.Methods {
			decided += m.Queries
		}
		if decided != r.Plan.Summary.Queries {
			return fmt.Errorf("load: plan method queries sum to %d, summary says %d", decided, r.Plan.Summary.Queries)
		}
	}
	return nil
}

// QueryVector derives user u's query deterministically from the run
// seed: the same (seed, u, dim) always yields the same vector, so two
// runs against the same catalog are replayable query-for-query.
func QueryVector(seed int64, u uint64, dim int) []float64 {
	rng := rand.New(rand.NewSource(seed ^ int64(u*0x9e3779b97f4a7c15)))
	q := make([]float64, dim)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	return q
}

// tally accumulates results from the sender goroutines.
type tally struct {
	mu sync.Mutex
	//fex:guard mu
	completed int
	//fex:guard mu
	errors   int
	byStatus map[string]int
	searches int
	adds     int
	deletes  int
	partials int
	lats     []float64 // seconds, completed searches only
	//fex:guard mu
	addedIDs []int // ids created by adds, consumed by deletes
}

func (t *tally) noteStatus(code int) {
	var class string
	switch {
	case code < 300:
		class = "2xx"
	case code < 400:
		class = "3xx"
	case code < 500:
		class = "4xx"
	default:
		class = "5xx"
	}
	t.byStatus[class]++
}

// Run executes one open-loop load run and returns its report. ctx
// cancellation stops scheduling new arrivals; already-dispatched
// requests are awaited.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Users-1))
	if zipf == nil {
		return nil, fmt.Errorf("load: bad zipf parameters s=%v users=%d", cfg.ZipfS, cfg.Users)
	}

	tl := &tally{byStatus: make(map[string]int)}
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	var sent, shed, mutations int

	start := time.Now()
	next := start
	// The arrival schedule is computed from the rate alone: each
	// iteration sleeps until the precomputed arrival time, so server
	// slowness never stretches the schedule (open loop). Draws happen
	// on this single goroutine, keeping the zipf/rng sequence — and so
	// the whole workload — deterministic for a given seed.
	for i := 0; ; i++ {
		offset := next.Sub(start)
		if offset >= cfg.Duration || ctx.Err() != nil {
			break
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}

		isMutation := cfg.MutateEvery > 0 && i%cfg.MutateEvery == cfg.MutateEvery-1
		user := zipf.Uint64()

		select {
		case sem <- struct{}{}:
			sent++
			wg.Add(1)
			if isMutation {
				mutations++
				doDelete := mutations%2 == 0
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					fireMutation(ctx, &cfg, tl, user, doDelete)
				}()
			} else {
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					fireSearch(ctx, &cfg, tl, user)
				}()
			}
		default:
			shed++
		}

		next = next.Add(interval(&cfg, offset))
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := buildReport(&cfg, tl, sent, shed, elapsed)
	rep.Plan = fetchPlan(&cfg)
	if cfg.ownsClient {
		// Every sender has joined (wg.Wait above); drop the transport's
		// keep-alive connections too, so no goroutine started on this
		// run's behalf outlives it (TestRunJoinsGoroutines).
		cfg.Client.CloseIdleConnections()
	}
	return rep, nil
}

// fetchPlan asks the target for its planner summary once the run is
// over. Any failure — 404 from a fixed-method server, transport error,
// malformed body — just leaves the report's plan block null: the load
// numbers stand on their own.
func fetchPlan(cfg *Config) *PlanReport {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.Target+"/v1/plan", nil)
	if err != nil {
		return nil
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	var pr PlanReport
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&pr) != nil {
		return nil
	}
	return &pr
}

// interval is the gap to the next arrival at time offset into the run,
// honoring burst phases.
func interval(cfg *Config, offset time.Duration) time.Duration {
	rate := cfg.Rate
	if cfg.BurstEvery > 0 && offset%cfg.BurstEvery < cfg.BurstDur {
		rate *= cfg.BurstFactor
	}
	return time.Duration(float64(time.Second) / rate)
}

func fireSearch(ctx context.Context, cfg *Config, tl *tally, user uint64) {
	body, _ := json.Marshal(map[string]any{
		"vector": QueryVector(cfg.Seed, user, cfg.Dim),
		"k":      cfg.K,
	})
	t0 := time.Now()
	resp, err := post(ctx, cfg, cfg.Target+"/v1/search", body)
	took := time.Since(t0)

	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.completed++
	if err != nil {
		tl.errors++
		return
	}
	tl.searches++
	tl.noteStatus(resp.status)
	if resp.status == http.StatusOK {
		tl.lats = append(tl.lats, took.Seconds())
		if resp.exactKnown && !resp.exact {
			tl.partials++
		}
	}
}

func fireMutation(ctx context.Context, cfg *Config, tl *tally, user uint64, doDelete bool) {
	// Deletes consume ids this run created, so the generator never
	// shrinks a catalog it does not own; with none available the
	// mutation falls back to an add.
	var deleteID int
	if doDelete {
		tl.mu.Lock()
		if n := len(tl.addedIDs); n > 0 {
			deleteID = tl.addedIDs[n-1]
			tl.addedIDs = tl.addedIDs[:n-1]
		} else {
			doDelete = false
		}
		tl.mu.Unlock()
	}

	var resp httpResult
	var err error
	if doDelete {
		resp, err = do(ctx, cfg, http.MethodDelete, cfg.Target+"/v1/items/"+strconv.Itoa(deleteID), nil)
	} else {
		body, _ := json.Marshal(map[string]any{"vector": QueryVector(cfg.Seed, user|1<<63, cfg.Dim)})
		resp, err = post(ctx, cfg, cfg.Target+"/v1/items", body)
	}

	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.completed++
	if err != nil {
		tl.errors++
		return
	}
	tl.noteStatus(resp.status)
	if doDelete {
		tl.deletes++
		return
	}
	tl.adds++
	if resp.status == http.StatusCreated && resp.id >= 0 {
		tl.addedIDs = append(tl.addedIDs, resp.id)
	}
}

// httpResult is the slice of a response the tally needs.
type httpResult struct {
	status     int
	exact      bool
	exactKnown bool
	id         int
}

func post(ctx context.Context, cfg *Config, url string, body []byte) (httpResult, error) {
	return do(ctx, cfg, http.MethodPost, url, body)
}

func do(ctx context.Context, cfg *Config, method, url string, body []byte) (httpResult, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return httpResult{id: -1}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return httpResult{id: -1}, err
	}
	defer resp.Body.Close()
	out := httpResult{status: resp.StatusCode, id: -1}
	var payload struct {
		Exact *bool `json:"exact"`
		ID    *int  `json:"id"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&payload) == nil {
		if payload.Exact != nil {
			out.exact, out.exactKnown = *payload.Exact, true
		}
		if payload.ID != nil {
			out.id = *payload.ID
		}
	}
	// Drain so the transport can reuse the connection.
	_, _ = io.Copy(io.Discard, resp.Body)
	return out, nil
}

func buildReport(cfg *Config, tl *tally, sent, shed int, elapsed time.Duration) *Report {
	tl.mu.Lock()
	defer tl.mu.Unlock()

	goVersion, gcflags := obs.Toolchain()
	r := &Report{
		Schema:    Schema,
		GoVersion: goVersion,
		GCFlags:   gcflags,
		Target:    cfg.Target,
		Workload: Workload{
			Rate:         cfg.Rate,
			DurationMs:   ms(cfg.Duration),
			Users:        cfg.Users,
			ZipfS:        cfg.ZipfS,
			K:            cfg.K,
			Dim:          cfg.Dim,
			MutateEvery:  cfg.MutateEvery,
			BurstEveryMs: ms(cfg.BurstEvery),
			BurstDurMs:   ms(cfg.BurstDur),
			BurstFactor:  cfg.BurstFactor,
			Seed:         cfg.Seed,
		},
		Sent:      sent,
		Completed: tl.completed,
		Shed:      shed,
		Errors:    tl.errors,
		ByStatus:  tl.byStatus,
		Searches:  tl.searches,
		Adds:      tl.adds,
		Deletes:   tl.deletes,
		Partials:  tl.partials,
		ElapsedMs: ms(elapsed),
	}
	if elapsed > 0 {
		r.AchievedQPS = float64(tl.completed) / elapsed.Seconds()
	}

	lats := append([]float64(nil), tl.lats...)
	sort.Float64s(lats)
	if n := len(lats); n > 0 {
		var sum float64
		for _, v := range lats {
			sum += v
		}
		r.LatencyMs = Latency{
			Mean: sum / float64(n) * 1e3,
			P50:  quantile(lats, 0.5) * 1e3,
			P95:  quantile(lats, 0.95) * 1e3,
			P99:  quantile(lats, 0.99) * 1e3,
			P999: quantile(lats, 0.999) * 1e3,
			Max:  lats[n-1] * 1e3,
		}
	}
	for _, obj := range cfg.SLOs {
		viol := 0
		bound := obj.Seconds()
		for _, v := range lats {
			if v > bound {
				viol++
			}
		}
		res := SLOResult{Objective: obj.String(), ObjectiveMs: ms(obj), Violations: viol}
		if len(lats) > 0 {
			res.BurnRate = float64(viol) / float64(len(lats))
		}
		r.SLOs = append(r.SLOs, res)
	}
	return r
}

// quantile is the exact order statistic over sorted values: the
// smallest element with at least a q fraction of the sample at or
// below it.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1e3
}
