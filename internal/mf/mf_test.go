package mf

import (
	"math"
	"testing"

	"fexipro/internal/data"
)

func plantedSet(t *testing.T, seed int64) ([]data.Rating, []data.Rating, data.RatingConfig) {
	t.Helper()
	cfg := data.RatingConfig{Users: 120, Items: 80, Dim: 5, PerUser: 30, Noise: 0.2, Scale: 5, Seed: seed}
	ratings, _, _ := data.PlantedRatings(cfg)
	train, test := data.SplitRatings(ratings, 0.2, seed+1)
	return train, test, cfg
}

func TestNewCSR(t *testing.T) {
	ratings := []data.Rating{
		{User: 1, Item: 0, Value: 3},
		{User: 0, Item: 2, Value: 5},
		{User: 1, Item: 2, Value: 1},
	}
	m, err := NewCSR(ratings, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	cols, vals := m.Row(0)
	if len(cols) != 1 || cols[0] != 2 || vals[0] != 5 {
		t.Fatalf("row 0: %v %v", cols, vals)
	}
	cols, vals = m.Row(1)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 {
		t.Fatalf("row 1: %v %v", cols, vals)
	}
}

func TestNewCSRDedupKeepsLast(t *testing.T) {
	ratings := []data.Rating{
		{User: 0, Item: 0, Value: 1},
		{User: 0, Item: 0, Value: 4},
	}
	m, err := NewCSR(ratings, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 1 || m.Val[0] != 4 {
		t.Fatalf("dedup: nnz=%d val=%v", m.NNZ(), m.Val)
	}
}

func TestNewCSRRejectsOutOfRange(t *testing.T) {
	if _, err := NewCSR([]data.Rating{{User: 5, Item: 0}}, 2, 2); err == nil {
		t.Fatal("expected range error")
	}
}

func TestTranspose(t *testing.T) {
	ratings := []data.Rating{
		{User: 0, Item: 1, Value: 2},
		{User: 1, Item: 0, Value: 3},
		{User: 1, Item: 1, Value: 4},
	}
	m, err := NewCSR(ratings, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Transpose()
	if tr.NumRows != 2 || tr.NNZ() != 3 {
		t.Fatalf("transpose shape: %d rows, %d nnz", tr.NumRows, tr.NNZ())
	}
	cols, vals := tr.Row(1)
	if len(cols) != 2 || vals[0] != 2 || vals[1] != 4 {
		t.Fatalf("transpose row 1: %v %v", cols, vals)
	}
}

func TestTransposePositionMap(t *testing.T) {
	ratings := []data.Rating{
		{User: 0, Item: 1, Value: 2},
		{User: 1, Item: 0, Value: 3},
		{User: 1, Item: 1, Value: 4},
	}
	m, _ := NewCSR(ratings, 2, 2)
	tr := m.Transpose()
	posMap := transposePositionMap(m)
	for p := 0; p < tr.NNZ(); p++ {
		if m.Val[posMap[p]] != tr.Val[p] {
			t.Fatalf("position map broken at %d", p)
		}
	}
}

func TestTrainCCDRecoversPlantedModel(t *testing.T) {
	train, test, _ := plantedSet(t, 10)
	cfg := DefaultCCDConfig(5)
	model, err := TrainCCD(train, 120, 80, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainRMSE := model.RMSE(train)
	testRMSE := model.RMSE(test)
	if trainRMSE > 0.5 {
		t.Fatalf("train RMSE %.3f too high", trainRMSE)
	}
	if testRMSE > 0.8 {
		t.Fatalf("test RMSE %.3f too high — model failed to generalize", testRMSE)
	}
}

func TestTrainSGDRecoversPlantedModel(t *testing.T) {
	train, test, _ := plantedSet(t, 20)
	model, err := TrainSGD(train, 120, 80, DefaultSGDConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if rmse := model.RMSE(test); rmse > 0.9 {
		t.Fatalf("SGD test RMSE %.3f too high", rmse)
	}
}

func TestCCDBeatsMeanBaseline(t *testing.T) {
	train, test, _ := plantedSet(t, 30)
	model, err := TrainCCD(train, 120, 80, DefaultCCDConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, r := range train {
		mean += r.Value
	}
	mean /= float64(len(train))
	var se float64
	for _, r := range test {
		se += (r.Value - mean) * (r.Value - mean)
	}
	baseline := math.Sqrt(se / float64(len(test)))
	if model.RMSE(test) >= baseline {
		t.Fatalf("CCD RMSE %.3f no better than mean baseline %.3f", model.RMSE(test), baseline)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := TrainCCD(nil, 5, 5, DefaultCCDConfig(3)); err == nil {
		t.Fatal("expected error on empty ratings")
	}
	if _, err := TrainCCD([]data.Rating{{User: 0, Item: 0, Value: 3}}, 1, 1, CCDConfig{Dim: 0}); err == nil {
		t.Fatal("expected error on zero dim")
	}
	if _, err := TrainSGD(nil, 5, 5, DefaultSGDConfig(3)); err == nil {
		t.Fatal("expected error on empty ratings")
	}
	if _, err := TrainSGD([]data.Rating{{User: 9, Item: 0, Value: 3}}, 2, 2, DefaultSGDConfig(2)); err == nil {
		t.Fatal("expected range error")
	}
}

func TestPredictUsesGlobalBias(t *testing.T) {
	train, _, _ := plantedSet(t, 40)
	model, err := TrainCCD(train, 120, 80, DefaultCCDConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if model.GlobalBias == 0 {
		t.Fatal("expected nonzero global bias with CenterRatings")
	}
	p := model.Predict(0, 0)
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("prediction %v", p)
	}
}

func TestModelRMSEEmpty(t *testing.T) {
	m := &Model{}
	if got := m.RMSE(nil); got != 0 {
		t.Fatalf("RMSE(nil) = %v", got)
	}
}
