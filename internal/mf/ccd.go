package mf

import (
	"fmt"
	"math"
	"math/rand"

	"fexipro/internal/data"
	"fexipro/internal/vec"
)

// Model holds the learned factors: Users is m×d (row u is the factor
// vector of user u, the paper's q), Items is n×d (row i is item i's p).
type Model struct {
	Users, Items *vec.Matrix
	// GlobalBias is added to every prediction (the rating midpoint).
	GlobalBias float64
}

// Predict returns the predicted rating of user u for item i.
func (m *Model) Predict(u, i int) float64 {
	return m.GlobalBias + vec.Dot(m.Users.Row(u), m.Items.Row(i))
}

// RMSE evaluates the model on a rating set.
func (m *Model) RMSE(ratings []data.Rating) float64 {
	if len(ratings) == 0 {
		return 0
	}
	var se float64
	for _, r := range ratings {
		e := r.Value - m.Predict(r.User, r.Item)
		se += e * e
	}
	return math.Sqrt(se / float64(len(ratings)))
}

// CCDConfig configures the CCD++ trainer (Yu et al., ICDM 2012 — the
// LIBPMF algorithm the paper uses for its learning phase).
type CCDConfig struct {
	Dim        int     // factorization rank d
	Lambda     float64 // L2 regularization weight
	OuterIters int     // passes over all d factors
	InnerIters int     // alternating u/v refinements per factor
	Seed       int64
	// CenterRatings subtracts the mean rating before factorizing and
	// stores it in Model.GlobalBias, which is how MF is deployed in
	// practice; retrieval operates on the factors only.
	CenterRatings bool
}

// DefaultCCDConfig returns the settings used across this repository's
// examples and tests.
func DefaultCCDConfig(dim int) CCDConfig {
	return CCDConfig{Dim: dim, Lambda: 0.05, OuterIters: 10, InnerIters: 3, Seed: 1, CenterRatings: true}
}

// TrainCCD factorizes the ratings with CCD++ rank-one coordinate descent.
//
// CCD++ sweeps the d latent factors; for factor t it adds the current
// rank-one term back into the residual, then alternately refits the user
// column u and item column v in closed form:
//
//	u_i = Σ_{j∈Ω_i} R̂_ij·v_j / (λ·|Ω_i| + Σ_{j∈Ω_i} v_j²)
//
// and symmetrically for v, before subtracting the refreshed rank-one
// term. The residual is kept in both user-major and item-major order,
// linked by a position map so one update writes both views.
func TrainCCD(ratings []data.Rating, numUsers, numItems int, cfg CCDConfig) (*Model, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("mf: CCD dim must be positive, got %d", cfg.Dim)
	}
	if len(ratings) == 0 {
		return nil, fmt.Errorf("mf: no ratings to factorize")
	}

	var bias float64
	if cfg.CenterRatings {
		for _, r := range ratings {
			bias += r.Value
		}
		bias /= float64(len(ratings))
	}
	centered := make([]data.Rating, len(ratings))
	for i, r := range ratings {
		r.Value -= bias
		centered[i] = r
	}

	userCSR, err := NewCSR(centered, numUsers, numItems)
	if err != nil {
		return nil, err
	}
	itemCSR := userCSR.Transpose()
	// toUser[p] is the user-major position of item-major position p.
	toUser := transposePositionMap(userCSR)

	rng := rand.New(rand.NewSource(cfg.Seed))
	model := &Model{
		Users:      vec.NewMatrix(numUsers, cfg.Dim),
		Items:      vec.NewMatrix(numItems, cfg.Dim),
		GlobalBias: bias,
	}
	// Small random init for item factors; users start at zero so the
	// initial residual equals the centered ratings exactly.
	for i := range model.Items.Data {
		model.Items.Data[i] = 0.1 * rng.NormFloat64()
	}

	// Residuals (user-major shared storage; item-major view via toUser).
	resU := make([]float64, userCSR.NNZ())
	copy(resU, userCSR.Val)

	u := make([]float64, numUsers)
	v := make([]float64, numItems)

	for outer := 0; outer < cfg.OuterIters; outer++ {
		for t := 0; t < cfg.Dim; t++ {
			for i := 0; i < numUsers; i++ {
				u[i] = model.Users.At(i, t)
			}
			for j := 0; j < numItems; j++ {
				v[j] = model.Items.At(j, t)
			}
			// Add the rank-one term back: R̂ += u·vᵀ on observed entries.
			addRankOne(userCSR, resU, u, v, +1)

			for inner := 0; inner < cfg.InnerIters; inner++ {
				solveColumn(userCSR, resU, nil, u, v, cfg.Lambda)    // refit u given v
				solveColumn(itemCSR, resU, toUser, v, u, cfg.Lambda) // refit v given u
			}

			addRankOne(userCSR, resU, u, v, -1)
			for i := 0; i < numUsers; i++ {
				model.Users.Set(i, t, u[i])
			}
			for j := 0; j < numItems; j++ {
				model.Items.Set(j, t, v[j])
			}
		}
	}
	return model, nil
}

// transposePositionMap returns, for each position in the transpose's
// item-major layout, the matching position in the user-major layout.
func transposePositionMap(userCSR *CSR) []int {
	m := make([]int, userCSR.NNZ())
	// Count per item, prefix sum — mirrors Transpose's fill order.
	ptr := make([]int, userCSR.NumCols+1)
	for _, c := range userCSR.ColIdx {
		ptr[c+1]++
	}
	for i := 0; i < userCSR.NumCols; i++ {
		ptr[i+1] += ptr[i]
	}
	fill := make([]int, userCSR.NumCols)
	for r := 0; r < userCSR.NumRows; r++ {
		lo, hi := userCSR.RowPtr[r], userCSR.RowPtr[r+1]
		for p := lo; p < hi; p++ {
			c := userCSR.ColIdx[p]
			m[ptr[c]+fill[c]] = p
			fill[c]++
		}
	}
	return m
}

// addRankOne applies res[p] += sign·u[row]·v[col] over observed entries,
// iterating in user-major order.
func addRankOne(userCSR *CSR, res []float64, u, v []float64, sign float64) {
	for r := 0; r < userCSR.NumRows; r++ {
		lo, hi := userCSR.RowPtr[r], userCSR.RowPtr[r+1]
		ur := u[r]
		if ur == 0 {
			continue
		}
		for p := lo; p < hi; p++ {
			res[p] += sign * ur * v[userCSR.ColIdx[p]]
		}
	}
}

// solveColumn refits dst (one latent column over csr's rows) in closed
// form against the fixed column other. res is indexed in USER-major
// positions; posMap maps csr's positions to user-major positions (nil
// when csr is already user-major).
func solveColumn(csr *CSR, res []float64, posMap []int, dst, other []float64, lambda float64) {
	for r := 0; r < csr.NumRows; r++ {
		lo, hi := csr.RowPtr[r], csr.RowPtr[r+1]
		if lo == hi {
			dst[r] = 0
			continue
		}
		var num, den float64
		for p := lo; p < hi; p++ {
			rp := p
			if posMap != nil {
				rp = posMap[p]
			}
			o := other[csr.ColIdx[p]]
			num += res[rp] * o
			den += o * o
		}
		den += lambda * float64(hi-lo)
		if den == 0 {
			dst[r] = 0
			continue
		}
		dst[r] = num / den
	}
}
