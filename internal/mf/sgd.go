package mf

import (
	"fmt"
	"math/rand"

	"fexipro/internal/data"
	"fexipro/internal/vec"
)

// SGDConfig configures the stochastic-gradient trainer, the lightweight
// alternative to CCD++ used where training time matters more than final
// RMSE (examples, property tests).
type SGDConfig struct {
	Dim       int
	Lambda    float64 // L2 regularization
	LearnRate float64
	Epochs    int
	// Decay multiplies the learning rate after each epoch.
	Decay         float64
	Seed          int64
	CenterRatings bool
}

// DefaultSGDConfig returns sane defaults for rank dim.
func DefaultSGDConfig(dim int) SGDConfig {
	return SGDConfig{Dim: dim, Lambda: 0.05, LearnRate: 0.02, Epochs: 30, Decay: 0.95, Seed: 1, CenterRatings: true}
}

// TrainSGD factorizes ratings with plain regularized matrix-factorization
// SGD: for each observed (u,i,r), with error e = r − qᵀp,
//
//	q ← q + η(e·p − λq),   p ← p + η(e·q − λp).
func TrainSGD(ratings []data.Rating, numUsers, numItems int, cfg SGDConfig) (*Model, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("mf: SGD dim must be positive, got %d", cfg.Dim)
	}
	if len(ratings) == 0 {
		return nil, fmt.Errorf("mf: no ratings to factorize")
	}
	for _, r := range ratings {
		if r.User < 0 || r.User >= numUsers || r.Item < 0 || r.Item >= numItems {
			return nil, fmt.Errorf("mf: rating (%d,%d) out of range %d×%d", r.User, r.Item, numUsers, numItems)
		}
	}

	var bias float64
	if cfg.CenterRatings {
		for _, r := range ratings {
			bias += r.Value
		}
		bias /= float64(len(ratings))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	model := &Model{
		Users:      vec.NewMatrix(numUsers, cfg.Dim),
		Items:      vec.NewMatrix(numItems, cfg.Dim),
		GlobalBias: bias,
	}
	scale := 0.1
	for i := range model.Users.Data {
		model.Users.Data[i] = scale * rng.NormFloat64()
	}
	for i := range model.Items.Data {
		model.Items.Data[i] = scale * rng.NormFloat64()
	}

	order := rng.Perm(len(ratings))
	lr := cfg.LearnRate
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Reshuffle with Fisher–Yates to decorrelate epochs.
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, idx := range order {
			r := ratings[idx]
			q := model.Users.Row(r.User)
			p := model.Items.Row(r.Item)
			e := r.Value - bias - vec.Dot(q, p)
			for s := 0; s < cfg.Dim; s++ {
				qs, ps := q[s], p[s]
				q[s] += lr * (e*ps - cfg.Lambda*qs)
				p[s] += lr * (e*qs - cfg.Lambda*ps)
			}
		}
		lr *= cfg.Decay
	}
	return model, nil
}
