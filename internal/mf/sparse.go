// Package mf implements the learning-phase substrate: low-rank matrix
// factorization of a sparse rating matrix R into user factors Q and item
// factors P such that qᵀp approximates the rating (Section 1, Figure 1 of
// the paper). The paper uses LIBPMF's CCD++ coordinate descent; this
// package provides a faithful CCD++ implementation plus a simpler SGD
// trainer, both stdlib-only.
package mf

import (
	"fmt"
	"sort"

	"fexipro/internal/data"
)

// CSR is a compressed sparse row matrix of observed ratings. Rows are
// users for the user-major view and items for the item-major view; CCD++
// needs both.
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int     // len NumRows+1
	ColIdx           []int     // len nnz
	Val              []float64 // len nnz
}

// NNZ returns the number of stored ratings.
func (m *CSR) NNZ() int { return len(m.Val) }

// Row returns the column indices and values of row i (aliases storage).
func (m *CSR) Row(i int) ([]int, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// NewCSR builds a user-major CSR from rating triples. Duplicate
// (user,item) pairs keep the last value. It returns an error if any index
// is out of range.
func NewCSR(ratings []data.Rating, numUsers, numItems int) (*CSR, error) {
	for _, r := range ratings {
		if r.User < 0 || r.User >= numUsers || r.Item < 0 || r.Item >= numItems {
			return nil, fmt.Errorf("mf: rating (%d,%d) out of range %d×%d", r.User, r.Item, numUsers, numItems)
		}
	}
	sorted := make([]data.Rating, len(ratings))
	copy(sorted, ratings)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].User != sorted[j].User {
			return sorted[i].User < sorted[j].User
		}
		return sorted[i].Item < sorted[j].Item
	})
	// Drop duplicates, keeping the later triple from the input order.
	dedup := sorted[:0]
	for _, r := range sorted {
		if len(dedup) > 0 && dedup[len(dedup)-1].User == r.User && dedup[len(dedup)-1].Item == r.Item {
			dedup[len(dedup)-1] = r
			continue
		}
		dedup = append(dedup, r)
	}

	m := &CSR{
		NumRows: numUsers,
		NumCols: numItems,
		RowPtr:  make([]int, numUsers+1),
		ColIdx:  make([]int, len(dedup)),
		Val:     make([]float64, len(dedup)),
	}
	for _, r := range dedup {
		m.RowPtr[r.User+1]++
	}
	for i := 0; i < numUsers; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	fill := make([]int, numUsers)
	for _, r := range dedup {
		pos := m.RowPtr[r.User] + fill[r.User]
		m.ColIdx[pos] = r.Item
		m.Val[pos] = r.Value
		fill[r.User]++
	}
	return m, nil
}

// Transpose returns the item-major view of the same ratings.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		NumRows: m.NumCols,
		NumCols: m.NumRows,
		RowPtr:  make([]int, m.NumCols+1),
		ColIdx:  make([]int, m.NNZ()),
		Val:     make([]float64, m.NNZ()),
	}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < t.NumRows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	fill := make([]int, t.NumRows)
	for r := 0; r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for k, c := range cols {
			pos := t.RowPtr[c] + fill[c]
			t.ColIdx[pos] = r
			t.Val[pos] = vals[k]
			fill[c]++
		}
	}
	return t
}
