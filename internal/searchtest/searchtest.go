// Package searchtest provides the shared harness that validates every
// retrieval method against the Naive ground truth: same top-k scores (to
// float tolerance) and same identities wherever scores are separated.
package searchtest

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"fexipro/internal/faults"
	"fexipro/internal/scan"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// Tolerance is the relative score tolerance used when comparing a method
// against Naive. The FEXIPRO transformations are lossless in real
// arithmetic; float64 evaluation leaves ~1e-12 relative noise.
const Tolerance = 1e-7

// RandomInstance generates an n×d item matrix and a query with entries
// from a mix of Gaussians (including negative values and norm skew, the
// regime the paper targets).
func RandomInstance(rng *rand.Rand, n, d int) (*vec.Matrix, []float64) {
	items := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		scale := math.Exp(0.6 * rng.NormFloat64())
		row := items.Row(i)
		for j := range row {
			row[j] = scale * rng.NormFloat64() * math.Exp(-0.05*float64(j))
		}
	}
	q := make([]float64, d)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	return items, q
}

// CheckTopK fails the test unless got matches the exact top-k of q
// against items. Scores must agree within Tolerance; IDs must agree
// except inside groups of near-tied scores.
func CheckTopK(t *testing.T, items *vec.Matrix, q []float64, k int, got []topk.Result, label string) {
	t.Helper()
	want := scan.NewNaive(items).Search(q, k)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !scoreClose(got[i].Score, want[i].Score) {
			t.Fatalf("%s: rank %d score %v, want %v (got=%v want=%v)",
				label, i, got[i].Score, want[i].Score, got, want)
		}
		// Verify the returned ID really achieves the claimed score.
		actual := vec.Dot(q, items.Row(got[i].ID))
		if !scoreClose(actual, want[i].Score) {
			t.Fatalf("%s: rank %d returned item %d with true score %v, want %v",
				label, i, got[i].ID, actual, want[i].Score)
		}
	}
}

func scoreClose(a, b float64) bool {
	return math.Abs(a-b) <= Tolerance*(1+math.Abs(a)+math.Abs(b))
}

// CheckSearcher runs a grid of (n, d, k) instances through the searcher
// factory and validates every answer against Naive.
func CheckSearcher(t *testing.T, build func(items *vec.Matrix) search.Searcher, label string) {
	t.Helper()
	rng := rand.New(rand.NewSource(12345))
	cases := []struct{ n, d, k int }{
		{1, 1, 1},
		{1, 5, 3},
		{10, 1, 2},
		{50, 3, 5},
		{100, 8, 1},
		{100, 8, 10},
		{300, 16, 7},
		{500, 32, 10},
		{200, 50, 5},
		{64, 50, 64},  // k == n
		{64, 50, 100}, // k > n
	}
	for _, c := range cases {
		items, _ := RandomInstance(rng, c.n, c.d)
		s := build(items)
		for trial := 0; trial < 5; trial++ {
			q := make([]float64, c.d)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			got := s.Search(q, c.k)
			CheckTopK(t, items, q, c.k, got, label)
		}
	}
}

// FaultSearcher is a context-aware searcher that accepts a
// fault-injection hook — every searcher in this repository.
type FaultSearcher interface {
	search.ContextSearcher
	SetFaultHook(*faults.Hook)
}

// CheckCancellation is the cancellation property suite shared by every
// searcher: cancelling the scan at a random item (or node) index via a
// deterministic fault NEVER yields a result set flagged exact (nil
// error), every partial score is a true inner product of its returned
// ID, partial results stay sorted, a hook that never fires leaves the
// results identical to the uncancelled baseline, and an
// already-cancelled context returns promptly with ErrDeadline.
func CheckCancellation(t *testing.T, build func(items *vec.Matrix) FaultSearcher, label string) {
	t.Helper()
	checkCancellation(t, build, label, true)
}

// CheckCancellationApprox is CheckCancellation for approximate searchers
// (PCA-Tree): the uncancelled baseline is not compared against Naive,
// but every other invariant — never-exact-when-cut-short, true scores,
// sortedness, unfired-hook determinism, prompt pre-cancelled return —
// still holds.
func CheckCancellationApprox(t *testing.T, build func(items *vec.Matrix) FaultSearcher, label string) {
	t.Helper()
	checkCancellation(t, build, label, false)
}

func checkCancellation(t *testing.T, build func(items *vec.Matrix) FaultSearcher, label string, exact bool) {
	t.Helper()
	const seed = 20240611
	rng := rand.New(rand.NewSource(seed))
	items, q := RandomInstance(rng, 400, 16)
	const k = 10
	s := build(items)

	base, err := s.SearchContext(context.Background(), q, k)
	if err != nil {
		t.Fatalf("%s: uncancelled SearchContext error: %v", label, err)
	}
	if exact {
		CheckTopK(t, items, q, k, base, label+"/uncancelled")
	}

	for trial := 0; trial < 25; trial++ {
		cancelAt := 1 + rng.Intn(600) // may exceed the work actually done
		reg := faults.NewRegistry(seed + int64(trial))
		hook := reg.Enable(faults.SiteScan, faults.Plan{CancelAtItem: cancelAt})
		s.SetFaultHook(hook)
		res, err := s.SearchContext(context.Background(), q, k)
		s.SetFaultHook(nil)

		if hook.Counts().Cancels > 0 {
			// The scan was cut short: flagging these results exact (nil
			// error) would be a correctness lie.
			if err == nil {
				t.Fatalf("%s: cancel at item %d fired but SearchContext returned nil error",
					label, cancelAt)
			}
			if !errors.Is(err, search.ErrDeadline) {
				t.Fatalf("%s: cancellation error %v does not wrap search.ErrDeadline", label, err)
			}
		} else {
			// Fault never fired: the scan completed and must be exact,
			// identical to the baseline run.
			if err != nil {
				t.Fatalf("%s: unfired cancel at %d returned error %v", label, cancelAt, err)
			}
			if len(res) != len(base) {
				t.Fatalf("%s: unfired cancel changed result count %d != %d", label, len(res), len(base))
			}
			for i := range res {
				if res[i] != base[i] {
					t.Fatalf("%s: unfired cancel changed rank %d: %+v != %+v", label, i, res[i], base[i])
				}
			}
		}
		// Partial or not: scores are true inner products, sorted descending.
		for i, r := range res {
			actual := vec.Dot(q, items.Row(r.ID))
			if !scoreClose(actual, r.Score) {
				t.Fatalf("%s: cancel at %d returned item %d with score %v, true product %v",
					label, cancelAt, r.ID, r.Score, actual)
			}
			if i > 0 && res[i-1].Score < r.Score {
				t.Fatalf("%s: cancel at %d results unsorted at rank %d", label, cancelAt, i)
			}
		}
	}

	// An already-cancelled context returns promptly with ErrDeadline.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SearchContext(ctx, q, k); !errors.Is(err, search.ErrDeadline) {
		t.Fatalf("%s: pre-cancelled context error = %v, want ErrDeadline", label, err)
	}
}

// CheckSearcherEdgeCases exercises degenerate inputs: zero queries, zero
// items, duplicated vectors, negative-only data.
func CheckSearcherEdgeCases(t *testing.T, build func(items *vec.Matrix) search.Searcher, label string) {
	t.Helper()
	rng := rand.New(rand.NewSource(999))

	// Duplicated rows: scores must still be the duplicated maximum.
	row := []float64{0.5, -1.5, 2.0}
	items := vec.FromRows([][]float64{row, row, row, {0, 0, 0}, {-5, -5, -5}})
	s := build(items)
	q := []float64{1, 0.2, 0.1}
	CheckTopK(t, items, q, 3, s.Search(q, 3), label+"/duplicates")

	// Zero query vector.
	items2, _ := RandomInstance(rng, 40, 6)
	s2 := build(items2)
	zq := make([]float64, 6)
	got := s2.Search(zq, 4)
	if len(got) != 4 {
		t.Fatalf("%s: zero query returned %d results", label, len(got))
	}
	for _, r := range got {
		if r.Score != 0 {
			t.Fatalf("%s: zero query score %v != 0", label, r.Score)
		}
	}

	// All-negative items.
	neg := vec.NewMatrix(30, 4)
	for i := range neg.Data {
		neg.Data[i] = -rng.Float64() - 0.1
	}
	s3 := build(neg)
	q3 := []float64{1, 2, 3, 4}
	CheckTopK(t, neg, q3, 5, s3.Search(q3, 5), label+"/negative")

	// Items containing a zero vector.
	withZero := vec.NewMatrix(10, 3)
	for i := 1; i < 10; i++ {
		for j := 0; j < 3; j++ {
			withZero.Set(i, j, rng.NormFloat64())
		}
	}
	s4 := build(withZero)
	q4 := []float64{0.3, -0.7, 1.1}
	CheckTopK(t, withZero, q4, 10, s4.Search(q4, 10), label+"/zero-item")
}
