package searchtest

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// SnapshotShardCounts is the shard grid the persistence round-trip
// harness runs: the single-scan reference and one genuinely parallel
// count.
var SnapshotShardCounts = []int{1, 4}

// SnapshotCodec describes how a searcher package builds, persists, and
// serves one of its index types, for CheckSnapshotRoundTrip. T is the
// package's index type (core.Index, lemp.Index, a tree, ...).
type SnapshotCodec[T any] struct {
	// Build constructs the index from an item matrix. Fail the test
	// inside the closure on construction errors.
	Build func(items *vec.Matrix) T
	// Save serializes the index as a fexsnap container.
	Save func(ix T, w io.Writer) error
	// Load deserializes an index written by Save.
	Load func(r io.Reader) (T, error)
	// Searcher wraps the index in the package's sharded searcher. Called
	// with each count in SnapshotShardCounts, for both the original and
	// the loaded index.
	Searcher func(ix T, shards int) FaultSearcher
	// Approx marks approximate searchers (PCA-Tree): the cancellation
	// suite skips the Naive baseline but keeps every other invariant.
	Approx bool
}

// statser is implemented by every searcher in this repository
// (engine.Engine, core.Retriever): the per-stage pruning counters.
type statser interface{ Stats() search.Stats }

// CheckSnapshotRoundTrip is the shared persistence harness (DESIGN.md
// §15): for a grid of instances it saves the built index, loads it
// back, and requires the loaded index to be indistinguishable from the
// original — byte-identical on re-save, and bit-identical through the
// sharded searcher (same IDs, same scores bitwise, same tie order, and
// the same stage counters) for every shard count in
// SnapshotShardCounts. It then runs the full cancellation property
// suite against a loaded searcher, so persistence cannot change
// partial-result semantics either.
func CheckSnapshotRoundTrip[T any](t *testing.T, c SnapshotCodec[T], label string) {
	t.Helper()
	rng := rand.New(rand.NewSource(20260808))
	cases := []struct{ n, d, k int }{
		{1, 3, 1}, // fewer rows than shards
		{60, 8, 5},
		{200, 16, 10},
		{64, 12, 100}, // k > n
	}
	for _, cse := range cases {
		items, _ := RandomInstance(rng, cse.n, cse.d)
		checkSnapshotInstance(t, c, items, cse.k, rng,
			fmt.Sprintf("%s/n=%d,d=%d,k=%d", label, cse.n, cse.d, cse.k))
	}

	// Tie-heavy instance: duplicated rows force exact score ties, so any
	// ordering drift introduced by the save/load path would surface.
	dup := vec.NewMatrix(90, 6)
	for i := 0; i < dup.Rows; i++ {
		src := dup.Row(i)
		r := rand.New(rand.NewSource(int64(i % 9)))
		for j := range src {
			src[j] = r.NormFloat64()
		}
	}
	checkSnapshotInstance(t, c, dup, 25, rng, label+"/duplicates")

	// Cancellation semantics survive the round trip: the loaded searcher
	// must satisfy the same partial-result contract as a fresh one.
	for _, shards := range SnapshotShardCounts {
		shards := shards
		build := func(items *vec.Matrix) FaultSearcher {
			return c.Searcher(saveLoad(t, c, c.Build(items), label), shards)
		}
		lbl := fmt.Sprintf("%s/loaded/S=%d", label, shards)
		if c.Approx {
			CheckCancellationApprox(t, build, lbl)
		} else {
			CheckCancellation(t, build, lbl)
		}
	}
}

// saveLoad round-trips an index through the codec, asserting the save
// is deterministic and the loaded index re-saves byte-identically.
func saveLoad[T any](t *testing.T, c SnapshotCodec[T], ix T, label string) T {
	t.Helper()
	var buf, again bytes.Buffer
	if err := c.Save(ix, &buf); err != nil {
		t.Fatalf("%s: save: %v", label, err)
	}
	if err := c.Save(ix, &again); err != nil {
		t.Fatalf("%s: second save: %v", label, err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("%s: saving the same index twice produced different bytes", label)
	}
	loaded, err := c.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%s: load: %v", label, err)
	}
	var resaved bytes.Buffer
	if err := c.Save(loaded, &resaved); err != nil {
		t.Fatalf("%s: re-save of loaded index: %v", label, err)
	}
	if !bytes.Equal(buf.Bytes(), resaved.Bytes()) {
		t.Fatalf("%s: loaded index re-saves to different bytes (%d vs %d): snapshot is lossy",
			label, buf.Len(), resaved.Len())
	}
	return loaded
}

func checkSnapshotInstance[T any](t *testing.T, c SnapshotCodec[T], items *vec.Matrix, k int, rng *rand.Rand, label string) {
	t.Helper()
	orig := c.Build(items)
	loaded := saveLoad(t, c, orig, label)

	for _, shards := range SnapshotShardCounts {
		fresh := c.Searcher(orig, shards)
		warm := c.Searcher(loaded, shards)
		for trial := 0; trial < 4; trial++ {
			q := make([]float64, items.Cols)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			want, err := fresh.SearchContext(context.Background(), q, k)
			if err != nil {
				t.Fatalf("%s: S=%d original search: %v", label, shards, err)
			}
			got, err := warm.SearchContext(context.Background(), q, k)
			if err != nil {
				t.Fatalf("%s: S=%d loaded search: %v", label, shards, err)
			}
			topk.SortResults(want)
			topk.SortResults(got)
			if len(got) != len(want) {
				t.Fatalf("%s: S=%d query %d: loaded returned %d results, original %d",
					label, shards, trial, len(got), len(want))
			}
			for i := range want {
				// Struct equality: IDs AND bitwise scores AND tie order.
				if got[i] != want[i] {
					t.Fatalf("%s: S=%d query %d rank %d: loaded %+v, original %+v",
						label, shards, trial, i, got[i], want[i])
				}
			}
			// The loaded index must also walk the same pruning path, not
			// just reach the same answer: stage counters are part of the
			// persisted contract (they feed /metrics and the perf gates).
			fs, okF := fresh.(statser)
			ls, okL := warm.(statser)
			if okF && okL {
				if a, b := fs.Stats(), ls.Stats(); a != b {
					t.Fatalf("%s: S=%d query %d: stage counters diverged after load:\noriginal %+v\n  loaded %+v",
						label, shards, trial, a, b)
				}
			}
		}
	}
}
