package searchtest

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fexipro/internal/faults"
	"fexipro/internal/method"
	"fexipro/internal/plan"
	"fexipro/internal/search"
	"fexipro/internal/vec"
)

// PlannerShardCounts are the execution widths CheckPlannerExact runs at:
// the sequential path and a sharded-engine path.
var PlannerShardCounts = []int{1, 4}

// CheckPlannerExact is the query planner's correctness harness: a
// planner over the named registry methods must be a PURE delegator.
// For every query, at shards ∈ {1, 4}:
//
//   - the result set is bit-identical to what the chosen candidate
//     (LastDecision().Method) returns for the same query, and the
//     planner's Stats() are exactly that candidate's stage counters;
//   - cancellation behaves as if the chosen method had been called
//     directly — a fired fault yields an ErrDeadline-wrapping error
//     with true-score, sorted partial results, and the decision is
//     flagged Cancelled;
//   - a deliberately mispredicting cost model (coefficients swapped so
//     the worst candidate looks free) changes only WHICH method runs,
//     never what it returns: the wrong plan is slow, never wrong.
func CheckPlannerExact(t *testing.T, names []string, label string) {
	t.Helper()
	for _, shards := range PlannerShardCounts {
		rng := rand.New(rand.NewSource(777))
		items, _ := RandomInstance(rng, 500, 16)
		const k = 8

		p, cands := buildPlanner(t, names, items, shards, label)
		checkDelegation(t, rng, p, cands, items, k, shards, label)

		p2, _ := buildPlanner(t, names, items, shards, label)
		checkPlannerCancellation(t, rng, p2, items, k, shards, label)

		p3, _ := buildPlanner(t, names, items, shards, label)
		checkMispredictingModel(t, rng, p3, items, k, shards, label)
	}
}

// buildPlanner constructs a planner over registry methods plus the map
// of candidate searchers by canonical name (the same instances the
// planner routes to, so comparisons are against identical state).
func buildPlanner(t *testing.T, names []string, items *vec.Matrix, shards int, label string) (*plan.Planner, map[string]search.ContextSearcher) {
	t.Helper()
	var cands []plan.Candidate
	byName := make(map[string]search.ContextSearcher, len(names))
	for _, name := range names {
		d, err := method.Get(name)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		s, err := method.Sharded(name, items, method.BuildOptions{}, shards, 2)
		if err != nil {
			t.Fatalf("%s: building %s: %v", label, name, err)
		}
		cs := search.WithContext(s)
		cands = append(cands, plan.Candidate{Name: d.Name, Searcher: cs, Cost: d.Cost, Exact: d.Exact})
		byName[d.Name] = cs
	}
	p, err := plan.New(cands, plan.Options{N: items.Rows, D: items.Cols, Shards: shards, Workers: 2})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return p, byName
}

// checkDelegation verifies result and stats identity between the
// planner and its chosen candidate across enough queries to leave
// warmup and exercise cost decisions.
func checkDelegation(t *testing.T, rng *rand.Rand, p *plan.Planner, cands map[string]search.ContextSearcher, items *vec.Matrix, k, shards int, label string) {
	t.Helper()
	for trial := 0; trial < 12; trial++ {
		q := randomQuery(rng, items.Cols)
		res, err := p.SearchContext(context.Background(), q, k)
		if err != nil {
			t.Fatalf("%s shards=%d trial %d: %v", label, shards, trial, err)
		}
		d := p.LastDecision()
		chosen, ok := cands[d.Method]
		if !ok {
			t.Fatalf("%s shards=%d: decision names unknown candidate %q", label, shards, d.Method)
		}
		// Stats identity: the planner's counters ARE the chosen
		// candidate's counters for this query — nothing added, nothing
		// rescaled. (Read before re-running the candidate below.)
		cs, ok := chosen.(interface{ Stats() search.Stats })
		if !ok {
			t.Fatalf("%s: candidate %s exposes no Stats()", label, d.Method)
		}
		if got, want := p.Stats(), cs.Stats(); got != want {
			t.Fatalf("%s shards=%d: planner stats %+v != chosen %s stats %+v", label, shards, got, d.Method, want)
		}
		// Result identity: the same candidate instance answering the
		// same query must return the planner's exact result set, bit
		// for bit.
		want, werr := chosen.SearchContext(context.Background(), q, k)
		if werr != nil {
			t.Fatalf("%s shards=%d: re-running %s: %v", label, shards, d.Method, werr)
		}
		if len(res) != len(want) {
			t.Fatalf("%s shards=%d: planner %d results, %s returned %d", label, shards, len(res), d.Method, len(want))
		}
		for i := range want {
			if res[i] != want[i] {
				t.Fatalf("%s shards=%d rank %d: planner %+v != %s %+v", label, shards, i, res[i], d.Method, want[i])
			}
		}
		CheckTopK(t, items, q, k, res, label+"/vs-naive")
	}
}

// checkPlannerCancellation verifies the planner preserves the chosen
// method's cancellation contract: ErrDeadline partials with true
// scores, Cancelled recorded on the decision, and no stale state on
// the next uncancelled query.
func checkPlannerCancellation(t *testing.T, rng *rand.Rand, p *plan.Planner, items *vec.Matrix, k, shards int, label string) {
	t.Helper()
	q := randomQuery(rng, items.Cols)
	fired := 0
	for trial := 0; trial < 20; trial++ {
		cancelAt := 1 + rng.Intn(400)
		reg := faults.NewRegistry(int64(4000 + trial))
		hook := reg.Enable(faults.SiteScan, faults.Plan{CancelAtItem: cancelAt})
		p.SetFaultHook(hook)
		res, err := p.SearchContext(context.Background(), q, k)
		p.SetFaultHook(nil)
		d := p.LastDecision()
		if hook.Counts().Cancels > 0 {
			fired++
			if err == nil {
				t.Fatalf("%s shards=%d: cancel fired at %d but planner returned nil error", label, shards, cancelAt)
			}
			if !errors.Is(err, search.ErrDeadline) {
				t.Fatalf("%s shards=%d: cancellation error %v does not wrap ErrDeadline", label, shards, err)
			}
			if !d.Cancelled {
				t.Fatalf("%s shards=%d: cancelled query's decision %+v not flagged Cancelled", label, shards, d)
			}
		} else if err != nil {
			t.Fatalf("%s shards=%d: unfired cancel at %d errored: %v", label, shards, cancelAt, err)
		}
		for i, r := range res {
			actual := vecDot(q, items, r.ID)
			if !scoreClose(actual, r.Score) {
				t.Fatalf("%s shards=%d: partial result item %d score %v, true product %v", label, shards, r.ID, r.Score, actual)
			}
			if i > 0 && res[i-1].Score < r.Score {
				t.Fatalf("%s shards=%d: partial results unsorted at rank %d", label, shards, i)
			}
		}
	}
	if fired == 0 {
		t.Fatalf("%s shards=%d: no cancellation fault ever fired; harness is vacuous", label, shards)
	}
	// Cancelled observations must not poison routing: the next clean
	// query is still exact.
	res, err := p.SearchContext(context.Background(), q, k)
	if err != nil {
		t.Fatalf("%s shards=%d: post-cancel query errored: %v", label, shards, err)
	}
	CheckTopK(t, items, q, k, res, label+"/post-cancel")
}

// checkMispredictingModel injects a deliberately wrong calibration —
// every candidate's coefficients scrambled so predicted costs are
// nonsense — and verifies exactness is untouched: whatever method the
// bad model picks, the answer is still the exact top-k.
func checkMispredictingModel(t *testing.T, rng *rand.Rand, p *plan.Planner, items *vec.Matrix, k, shards int, label string) {
	t.Helper()
	bad := &plan.Calibration{Schema: plan.Schema, Methods: map[string]method.CostModel{}}
	for i, name := range p.Candidates() {
		// Alternate absurdly-free and absurdly-expensive priors so the
		// argmin lands on a "free" candidate regardless of its true cost.
		if i%2 == 0 {
			bad.Methods[name] = method.CostModel{Setup: 1e-12, PerItem: 1e-15, PerDim: 1e-15}
		} else {
			bad.Methods[name] = method.CostModel{Setup: 10, PerItem: 1e-3, PerDim: 1e-3}
		}
	}
	p.SetCalibration(bad)
	for trial := 0; trial < 8; trial++ {
		q := randomQuery(rng, items.Cols)
		res, err := p.SearchContext(context.Background(), q, k)
		if err != nil {
			t.Fatalf("%s shards=%d mispredict trial %d: %v", label, shards, trial, err)
		}
		CheckTopK(t, items, q, k, res, label+"/mispredict")
	}
}

func randomQuery(rng *rand.Rand, d int) []float64 {
	q := make([]float64, d)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	return q
}

func vecDot(q []float64, items *vec.Matrix, id int) float64 {
	return vec.Dot(q, items.Row(id))
}
