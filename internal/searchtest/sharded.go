package searchtest

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// ShardCounts is the shard grid the bit-exactness harness compares
// against the S=1 reference: a power of two, an odd divisor-unfriendly
// count, and a prime larger than most small-k heaps.
var ShardCounts = []int{2, 3, 7}

// CheckSharded is the sharded bit-exactness harness: for every instance
// in the grid it builds the searcher with S=1 and with each S in
// ShardCounts and asserts the results are IDENTICAL — same IDs, same
// scores (bitwise, not tolerance), same tie order — after
// topk.SortResults canonicalization. The grid deliberately includes
// tie-heavy degenerate inputs (duplicated rows, zero queries, k ≥ n)
// where any scan-order dependence in tie retention would surface.
//
// build must return a searcher over its own index built from items with
// the given shard count; shards == 1 must be supported and is the
// reference.
func CheckSharded(t *testing.T, build func(items *vec.Matrix, shards int) search.ContextSearcher, label string) {
	t.Helper()
	rng := rand.New(rand.NewSource(20260806))
	cases := []struct{ n, d, k int }{
		{1, 3, 1}, // fewer rows than shards
		{5, 3, 2}, // shard count close to n
		{60, 8, 5},
		{200, 16, 10},
		{331, 24, 7},  // prime n: uneven shard sizes everywhere
		{64, 12, 64},  // k == n
		{64, 12, 100}, // k > n
	}
	for _, c := range cases {
		items, _ := RandomInstance(rng, c.n, c.d)
		checkShardedInstance(t, build, items, c.k, 5, rng, fmt.Sprintf("%s/n=%d,d=%d,k=%d", label, c.n, c.d, c.k))
	}

	// Tie-heavy instance: blocks of duplicated rows force exact score
	// ties that straddle shard boundaries.
	dup := vec.NewMatrix(90, 6)
	for i := 0; i < dup.Rows; i++ {
		src := dup.Row(i)
		proto := i % 9 // 10 copies of each of 9 distinct rows
		r := rand.New(rand.NewSource(int64(proto)))
		for j := range src {
			src[j] = r.NormFloat64()
		}
	}
	checkShardedInstance(t, build, dup, 25, 5, rng, label+"/duplicates")

	// Zero query: every score ties at 0 (or the scan degenerates), the
	// harshest tie-order test of all.
	zitems, _ := RandomInstance(rng, 70, 5)
	zq := make([]float64, 5)
	checkShardedQueries(t, build, zitems, [][]float64{zq}, 12, label+"/zero-query")
}

func checkShardedInstance(t *testing.T, build func(items *vec.Matrix, shards int) search.ContextSearcher, items *vec.Matrix, k, trials int, rng *rand.Rand, label string) {
	t.Helper()
	queries := make([][]float64, trials)
	for i := range queries {
		q := make([]float64, items.Cols)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		queries[i] = q
	}
	checkShardedQueries(t, build, items, queries, k, label)
}

func checkShardedQueries(t *testing.T, build func(items *vec.Matrix, shards int) search.ContextSearcher, items *vec.Matrix, queries [][]float64, k int, label string) {
	t.Helper()
	ref := build(items, 1)
	sharded := make(map[int]search.ContextSearcher, len(ShardCounts))
	for _, s := range ShardCounts {
		sharded[s] = build(items, s)
	}
	for qi, q := range queries {
		want, err := ref.SearchContext(context.Background(), q, k)
		if err != nil {
			t.Fatalf("%s: S=1 query %d: %v", label, qi, err)
		}
		topk.SortResults(want)
		for _, s := range ShardCounts {
			got, err := sharded[s].SearchContext(context.Background(), q, k)
			if err != nil {
				t.Fatalf("%s: S=%d query %d: %v", label, s, qi, err)
			}
			topk.SortResults(got)
			if len(got) != len(want) {
				t.Fatalf("%s: S=%d query %d: %d results, want %d\n got=%v\nwant=%v",
					label, s, qi, len(got), len(want), got, want)
			}
			for i := range want {
				// Struct equality: IDs AND bitwise-identical scores AND
				// identical tie order. Any float drift or scan-order
				// dependence fails here.
				if got[i] != want[i] {
					t.Fatalf("%s: S=%d query %d rank %d: got %+v, want %+v\n got=%v\nwant=%v",
						label, s, qi, i, got[i], want[i], got, want)
				}
			}
		}
	}
}

// CheckShardedCancellation runs the full cancellation property suite
// (searchtest.CheckCancellation) against the sharded searcher for every
// S in ShardCounts: cancelled sharded scans must return
// ErrDeadline-flagged partials whose scores are all true inner
// products, and unfired hooks must leave results identical to the
// uncancelled baseline.
func CheckShardedCancellation(t *testing.T, build func(items *vec.Matrix, shards int) FaultSearcher, label string) {
	t.Helper()
	for _, s := range ShardCounts {
		s := s
		CheckCancellation(t, func(items *vec.Matrix) FaultSearcher {
			return build(items, s)
		}, fmt.Sprintf("%s/S=%d", label, s))
	}
}

// CheckShardedCancellationApprox is CheckShardedCancellation for
// approximate searchers (PCA-Tree): the uncancelled baseline is not
// compared against Naive but every other cancellation invariant holds.
func CheckShardedCancellationApprox(t *testing.T, build func(items *vec.Matrix, shards int) FaultSearcher, label string) {
	t.Helper()
	for _, s := range ShardCounts {
		s := s
		CheckCancellationApprox(t, func(items *vec.Matrix) FaultSearcher {
			return build(items, s)
		}, fmt.Sprintf("%s/S=%d", label, s))
	}
}
