package snap

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fexipro/internal/faults"
)

func walFixture(t *testing.T, dim int, recs []WALRecord) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dyn.wal")
	w, rp, err := OpenWAL(path, dim, 1, 0)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if len(rp.Records) != 0 || rp.Torn {
		t.Fatalf("fresh WAL replayed %+v", rp)
	}
	for _, rec := range recs {
		seq, err := w.Append(rec.Op, rec.ID, rec.Vec)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != rec.Seq {
			t.Fatalf("Append assigned seq %d, want %d", seq, rec.Seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func sampleRecords() []WALRecord {
	return []WALRecord{
		{Seq: 1, Op: WALAdd, ID: 10, Vec: []float64{1, -2.5, math.Pi}},
		{Seq: 2, Op: WALAdd, ID: 11, Vec: []float64{0, 0, -0.125}},
		{Seq: 3, Op: WALDelete, ID: 10},
		{Seq: 4, Op: WALAdd, ID: 12, Vec: []float64{9, 8, 7}},
	}
}

func TestWALRoundTrip(t *testing.T) {
	recs := sampleRecords()
	_, raw := walFixture(t, 3, recs)
	rp, err := ReplayWAL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if rp.Torn {
		t.Error("clean WAL reported torn")
	}
	if rp.Dim != 3 {
		t.Errorf("Dim = %d", rp.Dim)
	}
	if !reflect.DeepEqual(rp.Records, recs) {
		t.Errorf("records = %+v, want %+v", rp.Records, recs)
	}
	if rp.ValidLen != int64(len(raw)) {
		t.Errorf("ValidLen = %d, file is %d", rp.ValidLen, len(raw))
	}
	if rp.LastSeq() != 4 {
		t.Errorf("LastSeq = %d", rp.LastSeq())
	}
}

// TestWALTruncationEveryByte is the WAL half of the crash battery: cut
// the file at every byte offset and the replay must either fail typed
// (the header itself is gone) or return an intact prefix flagged Torn —
// never an invented or reordered record.
func TestWALTruncationEveryByte(t *testing.T) {
	recs := sampleRecords()
	_, raw := walFixture(t, 3, recs)
	for cut := 0; cut <= len(raw); cut++ {
		rp, err := ReplayWAL(bytes.NewReader(raw[:cut]))
		if cut < walHdrLen {
			if err == nil || !typedErr(err) {
				t.Fatalf("cut %d: header truncation gave %v", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if rp.ValidLen > int64(cut) {
			t.Fatalf("cut %d: ValidLen %d beyond the data", cut, rp.ValidLen)
		}
		if len(rp.Records) > len(recs) {
			t.Fatalf("cut %d: replayed %d records from %d", cut, len(rp.Records), len(recs))
		}
		for i, rec := range rp.Records {
			if !reflect.DeepEqual(rec, recs[i]) {
				t.Fatalf("cut %d: record %d = %+v, want %+v", cut, i, rec, recs[i])
			}
		}
		wantTorn := rp.ValidLen != int64(cut)
		if rp.Torn != wantTorn {
			t.Fatalf("cut %d: Torn = %v, want %v (ValidLen %d)", cut, rp.Torn, wantTorn, rp.ValidLen)
		}
	}
}

// TestWALBitFlipEveryByte flips one bit at every offset: replay must
// never panic, and whenever it succeeds the records must still be a
// prefix of the truth (a flip in an unread suffix past a torn tail is
// invisible by construction).
func TestWALBitFlipEveryByte(t *testing.T) {
	recs := sampleRecords()
	_, raw := walFixture(t, 3, recs)
	for off := 0; off < len(raw); off++ {
		b := append([]byte(nil), raw...)
		b[off] ^= 0x08
		rp, err := ReplayWAL(bytes.NewReader(b))
		if err != nil {
			if !typedErr(err) {
				t.Fatalf("flip %d: untyped error %v", off, err)
			}
			continue
		}
		for i, rec := range rp.Records {
			if i < len(recs) && reflect.DeepEqual(rec, recs[i]) {
				continue
			}
			// A flip inside a payload always breaks that record's CRC,
			// so a successful replay can only diverge if the flip hit a
			// length field and the CRC happened to collide — with CRC32
			// that cannot happen for a single-bit flip.
			t.Fatalf("flip %d: record %d silently changed: %+v", off, i, rec)
		}
	}
}

func TestWALCorruptionDetected(t *testing.T) {
	_, raw := walFixture(t, 3, sampleRecords())
	t.Run("payload flip mid-log", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[walHdrLen+8+4] ^= 0x01 // inside record 1's payload, not the tail
		_, err := ReplayWAL(bytes.NewReader(b))
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[0] = 'X'
		_, err := ReplayWAL(bytes.NewReader(b))
		if !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad dim", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		putU32(b[12:16], 0)
		_, err := ReplayWAL(bytes.NewReader(b))
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("oversized record length", func(t *testing.T) {
		b := append([]byte(nil), raw[:walHdrLen]...)
		var rec [8]byte
		putU32(rec[:4], 1<<30)
		b = append(b, rec[:]...)
		_, err := ReplayWAL(bytes.NewReader(b))
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
}

// TestWALReopenRepairsTornTail: OpenWAL on a file that crashed
// mid-append truncates the torn half-record and continues the sequence
// exactly where the intact prefix left off.
func TestWALReopenRepairsTornTail(t *testing.T) {
	recs := sampleRecords()
	path, raw := walFixture(t, 3, recs)
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	w, rp, err := OpenWAL(path, 3, 1, 0)
	if err != nil {
		t.Fatalf("OpenWAL on torn file: %v", err)
	}
	if !rp.Torn || len(rp.Records) != len(recs)-1 {
		t.Fatalf("replay = torn %v, %d records", rp.Torn, len(rp.Records))
	}
	if w.NextSeq() != 4 {
		t.Fatalf("NextSeq = %d, want 4", w.NextSeq())
	}
	if _, err := w.Append(WALAdd, 12, []float64{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rp2, err := ReplayWAL(bytes.NewReader(repaired))
	if err != nil || rp2.Torn {
		t.Fatalf("replay after repair: %+v, %v", rp2, err)
	}
	want := append(append([]WALRecord(nil), recs[:3]...), WALRecord{Seq: 4, Op: WALAdd, ID: 12, Vec: []float64{9, 8, 7}})
	if !reflect.DeepEqual(rp2.Records, want) {
		t.Fatalf("records after repair = %+v", rp2.Records)
	}
}

func TestWALBaseSeqAndReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dyn.wal")
	w, _, err := OpenWAL(path, 2, 1, 41)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Append(WALAdd, 0, []float64{1, 2})
	if err != nil || seq != 42 {
		t.Fatalf("Append after baseSeq 41: seq %d, %v", seq, err)
	}
	// Reset after a checkpoint at seq 42: log empties, numbering holds.
	if err := w.Reset(42); err != nil {
		t.Fatal(err)
	}
	if st, _ := os.Stat(path); st.Size() != walHdrLen {
		t.Fatalf("file size after Reset = %d", st.Size())
	}
	seq, err = w.Append(WALDelete, 0, nil)
	if err != nil || seq != 43 {
		t.Fatalf("Append after Reset: seq %d, %v", seq, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with the checkpoint's base: only the post-reset record
	// replays, and numbering still continues.
	w, rp, err := OpenWAL(path, 2, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(rp.Records) != 1 || rp.Records[0].Seq != 43 {
		t.Fatalf("replay after reopen = %+v", rp.Records)
	}
	if w.NextSeq() != 44 {
		t.Fatalf("NextSeq = %d", w.NextSeq())
	}
}

func TestWALDimMismatch(t *testing.T) {
	path, _ := walFixture(t, 3, sampleRecords())
	if _, _, err := OpenWAL(path, 5, 1, 0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("dim mismatch open = %v, want ErrChecksum", err)
	}
	w, _, err := OpenWAL(path, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(WALAdd, 99, []float64{1}); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestWALSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dyn.wal")
	w, _, err := OpenWAL(path, 1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Append(WALAdd, int64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.Appended(); got != 20 {
		t.Fatalf("Appended = %d", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	rp, err := ReplayWAL(bytes.NewReader(raw))
	if err != nil || len(rp.Records) != 20 {
		t.Fatalf("replay = %d records, %v", len(rp.Records), err)
	}
}

// TestWALFaultHookTornWrite drives faults.SiteWALWrite through the
// append path: the injected failure deterministically tears the record
// (half its bytes reach the file), the WAL refuses further use, and a
// reopen repairs back to the acknowledged prefix.
func TestWALFaultHookTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dyn.wal")
	w, _, err := OpenWAL(path, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := faults.NewRegistry(1)
	hook := reg.Enable(faults.SiteWALWrite, faults.Plan{FailEveryNCalls: 3})
	w.SetFaultHook(hook)

	var acked []WALRecord
	var failedAt int
	for i := 0; i < 3; i++ {
		rec := WALRecord{Op: WALAdd, ID: int64(i), Vec: []float64{float64(i), 1}}
		seq, err := w.Append(rec.Op, rec.ID, rec.Vec)
		if err != nil {
			if !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("append %d: %v", i, err)
			}
			failedAt = i
			break
		}
		rec.Seq = seq
		acked = append(acked, rec)
	}
	if failedAt != 2 {
		t.Fatalf("fault fired at append %d, want 2", failedAt)
	}
	if _, err := w.Append(WALDelete, 0, nil); err == nil {
		t.Fatal("broken WAL accepted another append")
	}
	_ = w.Close()

	raw, _ := os.ReadFile(path)
	rp, err := ReplayWAL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("replay of torn file: %v", err)
	}
	if !rp.Torn {
		t.Fatal("torn write left no torn tail")
	}
	if !reflect.DeepEqual(rp.Records, acked) {
		t.Fatalf("replay = %+v, want acked prefix %+v", rp.Records, acked)
	}
	// Determinism: the same plan tears at the same byte every time.
	if want := rp.ValidLen + int64(len(encodeWALRecord(WALRecord{Seq: 3, Op: WALAdd, ID: 2, Vec: []float64{2, 1}}, 2))/2); int64(len(raw)) != want {
		t.Fatalf("torn file is %d bytes, want %d", len(raw), want)
	}

	w2, rp2, err := OpenWAL(path, 2, 1, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(rp2.Records, acked) || w2.NextSeq() != 3 {
		t.Fatalf("reopen replay = %+v, NextSeq %d", rp2.Records, w2.NextSeq())
	}
}

// TestWALFaultHookPanic: a panic mid-append also tears the record and
// propagates (the server's recovery middleware turns it into a 500; the
// mutation was never acknowledged).
func TestWALFaultHookPanic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dyn.wal")
	w, _, err := OpenWAL(path, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := faults.NewRegistry(1)
	w.SetFaultHook(reg.Enable(faults.SiteWALWrite, faults.Plan{PanicAtItem: 2}))
	if _, err := w.Append(WALAdd, 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("injected panic did not propagate")
			}
		}()
		_, _ = w.Append(WALAdd, 1, []float64{2})
	}()
	_ = w.Close()
	raw, _ := os.ReadFile(path)
	rp, err := ReplayWAL(bytes.NewReader(raw))
	if err != nil || !rp.Torn || len(rp.Records) != 1 {
		t.Fatalf("after panic: %+v, %v", rp, err)
	}
}
