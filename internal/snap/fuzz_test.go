package snap

import (
	"bytes"
	"testing"
)

// FuzzSnapshotLoad feeds arbitrary bytes to the container reader. The
// contract under fuzz is exactly the one production relies on when a
// data-dir holds a damaged snapshot: a typed error or a clean parse,
// never a panic and never an allocation driven by a header-declared
// size (readPayload grows only as bytes actually arrive, mirroring the
// chunk-read fix in data.ReadMatrixBinary).
func FuzzSnapshotLoad(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, []Section{
		{Tag: "idx.meta", Payload: []byte{1, 2, 3}},
		{Tag: "idx.rows", Payload: make([]byte, 40)},
	}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-9])
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Read(bytes.NewReader(data))
		if err != nil {
			if !typedErr(err) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// A successful parse must re-encode: the sections came through
		// the CRC gate, so Write must accept them byte-for-byte.
		var out bytes.Buffer
		if err := Write(&out, file.Sections); err != nil {
			t.Fatalf("re-encode of parsed file failed: %v", err)
		}
		// And every payload must survive the decoder's bounds checks
		// without panicking, whatever typed junk it holds.
		for _, s := range file.Sections {
			d := NewDecoder(s.Payload)
			d.Matrix()
			d.Floats()
			d.Bool()
			_ = d.Finish()
		}
	})
}

// FuzzWALReplay feeds arbitrary bytes to the WAL scanner: typed error
// or a prefix-consistent replay, never a panic, and never a record the
// bytes do not fully back.
func FuzzWALReplay(f *testing.F) {
	var hdr [walHdrLen]byte
	copy(hdr[:8], walMagic)
	putU32(hdr[8:12], walVersion)
	putU32(hdr[12:16], 2)
	log := append([]byte(nil), hdr[:]...)
	log = append(log, encodeWALRecord(WALRecord{Seq: 1, Op: WALAdd, ID: 7, Vec: []float64{1, 2}}, 2)...)
	log = append(log, encodeWALRecord(WALRecord{Seq: 2, Op: WALDelete, ID: 7}, 2)...)
	f.Add(log)
	f.Add(log[:len(log)-3])
	f.Add(hdr[:])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rp, err := ReplayWAL(bytes.NewReader(data))
		if err != nil {
			if !typedErr(err) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if rp.ValidLen < walHdrLen || rp.ValidLen > int64(len(data)) {
			t.Fatalf("ValidLen %d outside [%d, %d]", rp.ValidLen, walHdrLen, len(data))
		}
		// The first sequence number is the caller's business (a reset
		// log continues from its checkpoint), but from there on the
		// chain must be contiguous and every add fully backed.
		for i, rec := range rp.Records {
			if rec.Seq == 0 {
				t.Fatalf("record %d has sequence 0", i)
			}
			if i > 0 && rec.Seq != rp.Records[i-1].Seq+1 {
				t.Fatalf("record %d has seq %d after %d", i, rec.Seq, rp.Records[i-1].Seq)
			}
			if rec.Op == WALAdd && len(rec.Vec) != rp.Dim {
				t.Fatalf("record %d vec has %d dims, want %d", i, len(rec.Vec), rp.Dim)
			}
		}
	})
}
