package snap

import (
	"encoding/binary"
	"fmt"
	"math"

	"fexipro/internal/vec"
)

// Encoder builds a section payload. All values are little-endian; the
// variable-length shapes (slices, matrices) carry explicit u64 lengths
// so a Decoder can bound-check before touching the data. Encoding into
// memory cannot fail, so the API has no error returns — the container
// writer reports I/O errors once per section.
type Encoder struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends an IEEE-754 float64 bit pattern (lossless: loading gives
// back the identical bits, the foundation of the bit-identity tests).
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Floats appends a length-prefixed []float64.
func (e *Encoder) Floats(v []float64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Ints appends a length-prefixed []int as int64s.
func (e *Encoder) Ints(v []int) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.I64(int64(x))
	}
}

// Int64s appends a length-prefixed []int64.
func (e *Encoder) Int64s(v []int64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}

// Int32s appends a length-prefixed []int32.
func (e *Encoder) Int32s(v []int32) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(x))
	}
}

// Int16s appends a length-prefixed []int16.
func (e *Encoder) Int16s(v []int16) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(x))
	}
}

// Bytes8 appends a length-prefixed byte blob (nested containers).
func (e *Encoder) Bytes8(v []byte) {
	e.U64(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// Matrix appends rows, cols, and the row-major float64 data. A nil
// matrix is encoded as rows = MaxUint64 and distinguished on load.
func (e *Encoder) Matrix(m *vec.Matrix) {
	if m == nil {
		e.U64(math.MaxUint64)
		return
	}
	e.U64(uint64(m.Rows))
	e.U64(uint64(m.Cols))
	for _, x := range m.Data {
		e.F64(x)
	}
}

// Decoder reads a section payload produced by Encoder. It carries a
// sticky error: after the first failure every subsequent read returns
// zero values, and Err() reports the failure wrapped in ErrTruncated or
// ErrChecksum. Length prefixes are validated against the bytes actually
// present BEFORE any allocation, so a corrupt length cannot OOM.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a section payload.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// Err returns the sticky decode error, nil if every read succeeded.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the unread byte count.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns the sticky error, or ErrChecksum if the payload has
// trailing bytes the decoder did not consume (a malformed section).
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in section payload", ErrChecksum, d.Remaining())
	}
	return nil
}

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail("%w: need %d bytes, have %d", ErrTruncated, n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads one byte as a bool; values other than 0/1 are corruption.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("%w: non-boolean byte in section payload", ErrChecksum)
		return false
	}
}

// length reads a u64 length prefix and validates that count × elemSize
// bytes are actually present, so slice reads never allocate on a lie.
func (d *Decoder) length(elemSize int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining())/uint64(elemSize) {
		d.fail("%w: declared length %d exceeds remaining %d bytes", ErrTruncated, n, d.Remaining())
		return 0
	}
	return int(n)
}

// Floats reads a length-prefixed []float64.
func (d *Decoder) Floats() []float64 {
	n := d.length(8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// Ints reads a length-prefixed []int.
func (d *Decoder) Ints() []int {
	n := d.length(8)
	if d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.I64())
	}
	return out
}

// Int64s reads a length-prefixed []int64.
func (d *Decoder) Int64s() []int64 {
	n := d.length(8)
	if d.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	return out
}

// Int32s reads a length-prefixed []int32.
func (d *Decoder) Int32s() []int32 {
	n := d.length(4)
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		b := d.take(4)
		if b == nil {
			return nil
		}
		out[i] = int32(binary.LittleEndian.Uint32(b))
	}
	return out
}

// Int16s reads a length-prefixed []int16.
func (d *Decoder) Int16s() []int16 {
	n := d.length(2)
	if d.err != nil {
		return nil
	}
	out := make([]int16, n)
	for i := range out {
		b := d.take(2)
		if b == nil {
			return nil
		}
		out[i] = int16(binary.LittleEndian.Uint16(b))
	}
	return out
}

// Bytes8 reads a length-prefixed byte blob, copying it out of the
// section buffer.
func (d *Decoder) Bytes8() []byte {
	n := d.length(1)
	if d.err != nil {
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Matrix reads a matrix written by Encoder.Matrix (nil-aware).
func (d *Decoder) Matrix() *vec.Matrix {
	rows := d.U64()
	if d.err != nil {
		return nil
	}
	if rows == math.MaxUint64 {
		return nil
	}
	cols := d.U64()
	if d.err != nil {
		return nil
	}
	// Shape must fit in the bytes actually present (8 per element), so
	// the allocation below is bounded by the payload size.
	if cols > 0 && rows > uint64(d.Remaining())/8/cols {
		d.fail("%w: matrix %d×%d exceeds remaining %d bytes", ErrTruncated, rows, cols, d.Remaining())
		return nil
	}
	if rows > maxSectionLen || cols > maxSectionLen {
		d.fail("%w: implausible matrix shape %d×%d", ErrChecksum, rows, cols)
		return nil
	}
	m := vec.NewMatrix(int(rows), int(cols))
	for i := range m.Data {
		m.Data[i] = d.F64()
	}
	return m
}
