package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"fexipro/internal/faults"
)

// Write-ahead log for core.DynamicIndex mutations (DESIGN.md §15). The
// file is a 16-byte header followed by append-only records:
//
//	magic   [8]byte  "FEXWAL\x00\x00"
//	version u32      1
//	dim     u32      item dimensionality (bounds every record size)
//	record*:
//	  length  u32    payload bytes
//	  crc     u32    CRC-32 (IEEE) of the payload
//	  payload:
//	    seq u64      strictly increasing, starting at baseSeq+1
//	    op  u8       'A' (add) or 'D' (delete)
//	    id  i64      catalog ID (the ID an add WILL be assigned)
//	    vec [dim]f64 add records only
//
// Replay semantics are the heart of crash recovery:
//
//   - A record cut short at the tail (torn write: the crash-normal
//     case, since appends are sequential) terminates replay; the intact
//     prefix is returned with Torn set. Recovery from a WAL truncated
//     at ANY byte offset therefore yields a prefix of the acknowledged
//     mutation sequence — never an invented or reordered one.
//   - A complete record whose CRC does not match (a bit flip, not a
//     torn write — torn writes can only shorten the tail) is
//     corruption: replay fails with ErrChecksum rather than guessing.
//   - Sequence numbers must increase by exactly 1; a gap means records
//     were lost in the middle and replay fails with ErrChecksum.
type WALRecord struct {
	Seq uint64
	Op  WALOp
	ID  int64
	Vec []float64 // add records only
}

// WALOp is the mutation kind of a WAL record.
type WALOp byte

const (
	// WALAdd appends an item (Vec holds the factor vector).
	WALAdd WALOp = 'A'
	// WALDelete retires a catalog ID.
	WALDelete WALOp = 'D'
)

const (
	walMagic   = "FEXWAL\x00\x00"
	walVersion = 1
	walHdrLen  = 16
	// maxWALDim bounds the dimensionality a WAL header may declare, so
	// a corrupt header cannot make replay allocate huge vectors.
	maxWALDim = 1 << 16
)

// WALReplay is the outcome of scanning a WAL file.
type WALReplay struct {
	Dim     int
	Records []WALRecord
	// Torn is true when the file ended inside a record — the signature
	// of a crash mid-append. ValidLen is the byte offset of the end of
	// the last intact record (the offset to truncate to on reopen).
	Torn     bool
	ValidLen int64
}

// LastSeq returns the sequence number of the final intact record (0 if
// none).
func (rp *WALReplay) LastSeq() uint64 {
	if len(rp.Records) == 0 {
		return 0
	}
	return rp.Records[len(rp.Records)-1].Seq
}

// ReplayWAL scans an entire WAL stream. See the package comment for the
// torn-tail vs corruption distinction. The returned error always wraps
// ErrBadMagic, ErrChecksum, or ErrTruncated.
func ReplayWAL(r io.Reader) (*WALReplay, error) {
	var hdr [walHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short WAL header: %v", errTruncOrMagic(err), err)
	}
	if string(hdr[:8]) != walMagic {
		return nil, fmt.Errorf("%w: bad WAL magic %q", ErrBadMagic, hdr[:8])
	}
	if v := getU32(hdr[8:12]); v != walVersion {
		return nil, fmt.Errorf("%w: unsupported WAL version %d (want %d)", ErrBadMagic, v, walVersion)
	}
	dim := int(getU32(hdr[12:16]))
	if dim < 1 || dim > maxWALDim {
		return nil, fmt.Errorf("%w: implausible WAL dimension %d", ErrChecksum, dim)
	}
	rp := &WALReplay{Dim: dim, ValidLen: walHdrLen}
	maxPayload := walPayloadLen(WALAdd, dim)
	for {
		var rhdr [8]byte
		n, err := io.ReadFull(r, rhdr[:])
		if err != nil {
			if n == 0 && errors.Is(err, io.EOF) {
				return rp, nil // clean end at a record boundary
			}
			rp.Torn = true // header cut short: torn tail
			return rp, nil
		}
		length := int(getU32(rhdr[:4]))
		crc := getU32(rhdr[4:8])
		if length > maxPayload {
			// A declared length beyond the largest legal record cannot
			// be satisfied by any suffix: corruption, not truncation.
			return nil, fmt.Errorf("%w: WAL record declares %d bytes, max %d for dim %d",
				ErrChecksum, length, maxPayload, dim)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			rp.Torn = true // payload cut short: torn tail
			return rp, nil
		}
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, fmt.Errorf("%w: WAL record %d crc %08x, want %08x",
				ErrChecksum, len(rp.Records)+1, got, crc)
		}
		rec, err := decodeWALRecord(payload, dim)
		if err != nil {
			return nil, err
		}
		if want := rp.LastSeq(); want != 0 && rec.Seq != want+1 {
			return nil, fmt.Errorf("%w: WAL sequence gap: record %d follows %d", ErrChecksum, rec.Seq, want)
		}
		rp.Records = append(rp.Records, rec)
		rp.ValidLen += int64(8 + length)
	}
}

// walPayloadLen is the exact payload size of a record of the given op.
func walPayloadLen(op WALOp, dim int) int {
	if op == WALAdd {
		return 17 + 8*dim
	}
	return 17
}

func encodeWALRecord(rec WALRecord, dim int) []byte {
	payload := make([]byte, 0, walPayloadLen(rec.Op, dim))
	payload = binary.LittleEndian.AppendUint64(payload, rec.Seq)
	payload = append(payload, byte(rec.Op))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(rec.ID))
	if rec.Op == WALAdd {
		for _, v := range rec.Vec {
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(v))
		}
	}
	out := make([]byte, 0, 8+len(payload))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

func decodeWALRecord(payload []byte, dim int) (WALRecord, error) {
	var rec WALRecord
	if len(payload) < 17 {
		return rec, fmt.Errorf("%w: WAL record payload of %d bytes", ErrChecksum, len(payload))
	}
	rec.Seq = getU64(payload[:8])
	rec.Op = WALOp(payload[8])
	rec.ID = int64(getU64(payload[9:17]))
	switch rec.Op {
	case WALAdd:
		if len(payload) != walPayloadLen(WALAdd, dim) {
			return rec, fmt.Errorf("%w: add record has %d bytes, want %d", ErrChecksum, len(payload), walPayloadLen(WALAdd, dim))
		}
		rec.Vec = make([]float64, dim)
		for i := range rec.Vec {
			rec.Vec[i] = math.Float64frombits(getU64(payload[17+8*i : 25+8*i]))
		}
	case WALDelete:
		if len(payload) != 17 {
			return rec, fmt.Errorf("%w: delete record has %d bytes, want 17", ErrChecksum, len(payload))
		}
	default:
		return rec, fmt.Errorf("%w: unknown WAL op %q", ErrChecksum, byte(rec.Op))
	}
	if rec.Seq == 0 {
		return rec, fmt.Errorf("%w: WAL record with sequence 0", ErrChecksum)
	}
	return rec, nil
}

// WAL is an open write-ahead log accepting appends. Appends are
// buffered per record and fsynced every SyncEvery records (and on Sync
// and Close), batching the dominant durability cost. All methods are
// safe for concurrent use, though the server serializes appends under
// its own mutex anyway.
//
// Lock hierarchy: WAL.mu is held across the fault-hook poll, whose
// Hook mutex is a leaf — declared here for the lockorder analyzer.
//
//fex:lockorder snap.WAL.mu < faults.Hook.mu
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
	dim  int
	//fex:guard mu
	nextSeq uint64
	// syncEvery batches fsyncs: 1 = fsync per append (full durability),
	// N > 1 amortizes at the cost of the last N-1 acks on power loss.
	syncEvery int
	//fex:guard mu
	unsynced int
	appended uint64
	hook     *faults.Hook
	broken   error
}

// OpenWAL opens (or creates) the WAL at path for appending. dim is the
// item dimensionality; baseSeq is the sequence number the owning
// snapshot is checkpointed at (records continue at baseSeq+1).
// syncEvery ≤ 0 means fsync on every append.
//
// An existing file is fully replayed and validated first; a torn tail
// (crash mid-append) is truncated away — exactly the prefix-consistent
// repair the replay semantics promise — while genuine corruption fails
// with a typed error. The replay result is returned so callers can
// re-apply records newer than their snapshot.
func OpenWAL(path string, dim, syncEvery int, baseSeq uint64) (*WAL, *WALReplay, error) {
	if dim < 1 || dim > maxWALDim {
		return nil, nil, fmt.Errorf("snap: WAL dimension %d out of range [1, %d]", dim, maxWALDim)
	}
	if syncEvery < 1 {
		syncEvery = 1
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, dim: dim, syncEvery: syncEvery}
	var rp *WALReplay
	if st.Size() == 0 {
		if err := w.writeHeader(); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		rp = &WALReplay{Dim: dim, ValidLen: walHdrLen}
	} else {
		rp, err = ReplayWAL(f)
		if err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		if rp.Dim != dim {
			_ = f.Close()
			return nil, nil, fmt.Errorf("%w: WAL dimension %d, index has %d", ErrChecksum, rp.Dim, dim)
		}
		if rp.Torn {
			if err := f.Truncate(rp.ValidLen); err != nil {
				_ = f.Close()
				return nil, nil, err
			}
		}
		if _, err := f.Seek(rp.ValidLen, io.SeekStart); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
	}
	w.nextSeq = rp.LastSeq() + 1
	if baseSeq+1 > w.nextSeq {
		w.nextSeq = baseSeq + 1
	}
	return w, rp, nil
}

func (w *WAL) writeHeader() error {
	var hdr [walHdrLen]byte
	copy(hdr[:8], walMagic)
	putU32(hdr[8:12], walVersion)
	putU32(hdr[12:16], uint32(w.dim))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	return w.f.Sync()
}

// Path returns the file the WAL writes to.
func (w *WAL) Path() string { return w.path }

// NextSeq returns the sequence number the next append will carry.
func (w *WAL) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// Appended returns the number of records appended through this handle.
func (w *WAL) Appended() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook consulted on every append (site faults.SiteWALWrite). When the
// hook fails or panics, the append deterministically tears: the first
// half of the encoded record reaches the file before the error
// surfaces, simulating a crash mid-write, and the WAL refuses further
// appends until reopened (the state a real crash would leave).
func (w *WAL) SetFaultHook(h *faults.Hook) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.hook = h
}

// Append durably logs one mutation and returns its sequence number.
// The record is NOT acknowledged (and the caller must not apply the
// mutation) unless Append returns nil.
func (w *WAL) Append(op WALOp, id int64, item []float64) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return 0, fmt.Errorf("snap: WAL is failed (reopen to recover): %w", w.broken)
	}
	if op == WALAdd && len(item) != w.dim {
		return 0, fmt.Errorf("snap: add record dim %d, WAL has %d", len(item), w.dim)
	}
	rec := WALRecord{Seq: w.nextSeq, Op: op, ID: id, Vec: item}
	enc := encodeWALRecord(rec, w.dim)
	if h := w.hook; h != nil {
		//lint:ignore lockhold the fault hook must fire inside the append critical section to model a torn write at the exact record boundary (test-only injection)
		if err := w.pollHookLocked(h, enc); err != nil {
			return 0, err
		}
	}
	if _, err := w.f.Write(enc); err != nil {
		w.broken = err
		return 0, err
	}
	w.nextSeq++
	w.appended++
	w.unsynced++
	if w.unsynced >= w.syncEvery {
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	}
	return rec.Seq, nil
}

// pollHookLocked consults the fault hook, tearing the write on failure or
// panic: half the encoded record hits the file (best-effort, synced),
// the WAL marks itself failed, and the fault propagates.
func (w *WAL) pollHookLocked(h *faults.Hook, enc []byte) error {
	tear := func(cause error) {
		_, _ = w.f.Write(enc[:len(enc)/2])
		_ = w.f.Sync()
		w.broken = cause
	}
	defer func() {
		if r := recover(); r != nil {
			tear(fmt.Errorf("snap: WAL append panicked: %v", r))
			panic(r)
		}
	}()
	if err := h.OnItem(int(w.nextSeq)); err != nil {
		tear(err)
		return fmt.Errorf("snap: WAL append torn: %w", err)
	}
	if err := h.OnCall(); err != nil {
		tear(err)
		return fmt.Errorf("snap: WAL append torn: %w", err)
	}
	return nil
}

// Sync flushes outstanding appends to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.unsynced == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.broken = err
		return err
	}
	w.unsynced = 0
	return nil
}

// Reset truncates the log back to its header after a successful
// checkpoint at baseSeq. Sequence numbers continue from baseSeq+1, so
// records that race a checkpoint remain identifiable (recovery skips
// anything at or below the snapshot's sequence).
func (w *WAL) Reset(baseSeq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if err := w.f.Truncate(walHdrLen); err != nil {
		w.broken = err
		return err
	}
	if _, err := w.f.Seek(walHdrLen, io.SeekStart); err != nil {
		w.broken = err
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.broken = err
		return err
	}
	w.unsynced = 0
	if baseSeq+1 > w.nextSeq {
		w.nextSeq = baseSeq + 1
	}
	return nil
}

// Close syncs and closes the file. The WAL must not be used afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var firstErr error
	if w.broken == nil {
		firstErr = w.syncLocked()
	}
	if err := w.f.Close(); firstErr == nil {
		firstErr = err
	}
	w.broken = errors.New("snap: WAL closed")
	return firstErr
}

// Little-endian helpers shared by the container and the WAL.
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }
