// Package snap implements fexsnap/v1, the versioned, checksummed binary
// container every persisted index in this repository is written in, plus
// the append-only write-ahead log that makes core.DynamicIndex mutations
// durable between snapshots (DESIGN.md §15).
//
// A fexsnap file is a 16-byte header followed by a sequence of sections
// and a mandatory end marker:
//
//	magic   [8]byte  "FEXSNAP\x00"
//	version u32      1
//	flags   u32      reserved, 0
//	section*:
//	  tag     [8]byte  ASCII, NUL-padded ("idx.bar\x00", ...)
//	  length  u64      payload bytes (excluding padding)
//	  crc     u32      CRC-32 (IEEE) of the payload
//	  _pad    u32      reserved, 0
//	  payload [length]byte, zero-padded to the next 8-byte boundary
//	end marker: a section with tag "fex.end\x00" and length 0
//
// Everything is little-endian and every offset a reader needs to touch
// is 8-byte aligned, so a future loader may mmap the file and cast
// float64 payloads in place. Readers skip sections whose tag they do not
// recognize (forward compatibility: a newer writer can add components
// without breaking older readers), but still verify their checksums.
//
// Failure taxonomy — every reader error wraps exactly one of the three
// exported sentinels, so callers (and the fuzz targets) can classify any
// corrupt input without string matching:
//
//   - ErrBadMagic: the input is not a fexsnap file (or an unsupported
//     version).
//   - ErrTruncated: the input ends before the end marker, or a declared
//     length points past the available bytes.
//   - ErrChecksum: all bytes are present but the content is corrupt
//     (CRC mismatch, implausible declared size, malformed structure).
//
// Like data.ReadMatrixBinary, readers never trust a header-declared size
// enough to allocate it up front: payloads are read in bounded chunks
// that grow only as data actually arrives, so a corrupt length fails
// with ErrTruncated instead of an OOM.
package snap

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Sentinel errors. Every error returned by a reader in this package
// wraps exactly one of these (match with errors.Is).
var (
	// ErrBadMagic means the input does not start with the fexsnap magic
	// or declares an unsupported version.
	ErrBadMagic = errors.New("snap: not a fexsnap file")
	// ErrChecksum means a section or record failed its CRC or declared a
	// structurally impossible size — the bytes are present but wrong.
	ErrChecksum = errors.New("snap: checksum mismatch")
	// ErrTruncated means the input ended before the format says it
	// should — the signature of a torn write or a partial copy.
	ErrTruncated = errors.New("snap: truncated input")
)

const (
	magic   = "FEXSNAP\x00"
	version = 1

	// endTag terminates the section stream; a reader that hits EOF
	// before seeing it reports ErrTruncated.
	endTag = "fex.end"

	// tagLen is the fixed on-disk tag width.
	tagLen = 8

	// maxSectionLen bounds a single section's declared payload so a
	// corrupt length fails fast. 1 GiB is ~30× the largest index any
	// test or bench in this repository builds.
	maxSectionLen = 1 << 30

	// chunk is the bounded read size used when draining payloads —
	// the same idiom as data.ReadMatrixBinary's chunked matrix read.
	chunk = 64 << 10
)

// Section is one tagged, checksummed payload of a fexsnap file.
type Section struct {
	Tag     string
	Payload []byte
}

// File is a fully parsed fexsnap container.
type File struct {
	Sections []Section
}

// Section returns the payload of the first section with the given tag
// and whether it was present.
func (f *File) Section(tag string) ([]byte, bool) {
	for _, s := range f.Sections {
		if s.Tag == tag {
			return s.Payload, true
		}
	}
	return nil, false
}

// Builder accumulates sections for a fexsnap file. The zero value is
// ready to use.
type Builder struct {
	secs []Section
}

// Section appends a section whose payload is produced by fn writing
// into a fresh Encoder.
func (b *Builder) Section(tag string, fn func(e *Encoder)) {
	e := &Encoder{}
	fn(e)
	b.secs = append(b.secs, Section{Tag: tag, Payload: e.Bytes()})
}

// Raw appends a pre-encoded section (used for nested containers and by
// the fixture generator).
func (b *Builder) Raw(tag string, payload []byte) {
	b.secs = append(b.secs, Section{Tag: tag, Payload: payload})
}

// Flush writes the assembled container to w.
func (b *Builder) Flush(w io.Writer) error {
	return Write(w, b.secs)
}

// Write emits a complete fexsnap/v1 container holding the given
// sections (in order), including header, per-section checksums,
// alignment padding, and the end marker.
func Write(w io.Writer, sections []Section) error {
	var hdr [16]byte
	copy(hdr[:8], magic)
	putU32(hdr[8:12], version)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, s := range sections {
		if len(s.Tag) > tagLen {
			return fmt.Errorf("snap: section tag %q longer than %d bytes", s.Tag, tagLen)
		}
		if s.Tag == endTag {
			return fmt.Errorf("snap: section tag %q is reserved", endTag)
		}
		if err := writeSection(w, s.Tag, s.Payload); err != nil {
			return err
		}
	}
	return writeSection(w, endTag, nil)
}

func writeSection(w io.Writer, tag string, payload []byte) error {
	var hdr [24]byte
	copy(hdr[:tagLen], tag)
	putU64(hdr[8:16], uint64(len(payload)))
	putU32(hdr[16:20], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if pad := padding(len(payload)); pad > 0 {
		var zeros [8]byte
		if _, err := w.Write(zeros[:pad]); err != nil {
			return err
		}
	}
	return nil
}

// padding returns the zero-byte count that aligns a payload of length n
// to the next 8-byte boundary.
func padding(n int) int { return (8 - n%8) % 8 }

// Read parses a complete fexsnap container. Unknown section tags are
// retained (callers skip what they do not need), checksums are verified
// for every section, and the end marker is mandatory — a file cut off
// at any byte yields ErrTruncated (or ErrChecksum if the cut landed
// inside a section whose header survived intact but whose bytes
// changed; a pure truncation always reports ErrTruncated).
func Read(r io.Reader) (*File, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", errTruncOrMagic(err), err)
	}
	if string(hdr[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadMagic, hdr[:8])
	}
	if v := getU32(hdr[8:12]); v != version {
		return nil, fmt.Errorf("%w: unsupported fexsnap version %d (want %d)", ErrBadMagic, v, version)
	}
	f := &File{}
	for {
		var shdr [24]byte
		if _, err := io.ReadFull(r, shdr[:]); err != nil {
			return nil, fmt.Errorf("%w: section header: %v", ErrTruncated, err)
		}
		tag := string(bytes.TrimRight(shdr[:tagLen], "\x00"))
		length := getU64(shdr[8:16])
		crc := getU32(shdr[16:20])
		if tag == endTag {
			if length != 0 {
				return nil, fmt.Errorf("%w: end marker with length %d", ErrChecksum, length)
			}
			return f, nil
		}
		if length > maxSectionLen {
			return nil, fmt.Errorf("%w: section %q declares implausible length %d", ErrChecksum, tag, length)
		}
		payload, err := readPayload(r, int(length))
		if err != nil {
			return nil, fmt.Errorf("%w: section %q: %v", ErrTruncated, tag, err)
		}
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, fmt.Errorf("%w: section %q crc %08x, want %08x", ErrChecksum, tag, got, crc)
		}
		if pad := padding(int(length)); pad > 0 {
			var zeros [8]byte
			if _, err := io.ReadFull(r, zeros[:pad]); err != nil {
				return nil, fmt.Errorf("%w: section %q padding: %v", ErrTruncated, tag, err)
			}
		}
		f.Sections = append(f.Sections, Section{Tag: tag, Payload: payload})
	}
}

// readPayload drains exactly n payload bytes in bounded chunks, growing
// the buffer only as data arrives so a corrupt declared length cannot
// trigger a huge allocation.
func readPayload(r io.Reader, n int) ([]byte, error) {
	buf := make([]byte, 0, minInt(n, chunk))
	for len(buf) < n {
		step := minInt(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// errTruncOrMagic classifies a short read of the file header: an empty
// input is "not a fexsnap file", a partial header is a truncation.
func errTruncOrMagic(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrBadMagic // zero bytes at all: not our format
	}
	return ErrTruncated
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
