package snap

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fexipro/internal/vec"
)

// typedErr reports whether err wraps exactly one of the three exported
// sentinels — the contract every reader in this package promises.
func typedErr(err error) bool {
	n := 0
	for _, s := range []error{ErrBadMagic, ErrChecksum, ErrTruncated} {
		if errors.Is(err, s) {
			n++
		}
	}
	return n == 1
}

func sampleSections() []Section {
	return []Section{
		{Tag: "idx.meta", Payload: []byte{1, 2, 3}},          // padded by 5
		{Tag: "idx.rows", Payload: make([]byte, 64)},         // already aligned
		{Tag: "empty", Payload: nil},                         // zero-length section
		{Tag: "odd", Payload: []byte("0123456789abcdefghi")}, // 19 bytes, padded by 5
	}
}

func mustWrite(t *testing.T, sections []Section) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, sections); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	sections := sampleSections()
	raw := mustWrite(t, sections)
	f, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(f.Sections) != len(sections) {
		t.Fatalf("got %d sections, want %d", len(f.Sections), len(sections))
	}
	for i, want := range sections {
		got := f.Sections[i]
		if got.Tag != want.Tag {
			t.Errorf("section %d tag %q, want %q", i, got.Tag, want.Tag)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("section %d payload differs", i)
		}
	}
	if _, ok := f.Section("idx.rows"); !ok {
		t.Error("Section(idx.rows) not found")
	}
	if _, ok := f.Section("missing"); ok {
		t.Error("Section(missing) unexpectedly found")
	}
	// Writing the parsed sections again must reproduce the bytes
	// exactly — the determinism the bit-identity tests build on.
	if again := mustWrite(t, f.Sections); !bytes.Equal(again, raw) {
		t.Error("re-encoding parsed sections changed the bytes")
	}
}

// TestContainerAlignment verifies the mmap-friendliness claim: every
// section header and every payload starts on an 8-byte boundary.
func TestContainerAlignment(t *testing.T) {
	raw := mustWrite(t, sampleSections())
	if len(raw)%8 != 0 {
		t.Errorf("file length %d not 8-byte aligned", len(raw))
	}
	off := 16 // file header
	for _, s := range sampleSections() {
		if off%8 != 0 {
			t.Errorf("section %q header at unaligned offset %d", s.Tag, off)
		}
		payloadOff := off + 24
		if payloadOff%8 != 0 {
			t.Errorf("section %q payload at unaligned offset %d", s.Tag, payloadOff)
		}
		off = payloadOff + len(s.Payload) + padding(len(s.Payload))
	}
}

func TestWriteRejectsBadTags(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Section{{Tag: "waytoolongtag"}}); err == nil {
		t.Error("overlong tag accepted")
	}
	if err := Write(&buf, []Section{{Tag: endTag}}); err == nil {
		t.Error("reserved end tag accepted")
	}
}

func TestReadErrorTaxonomy(t *testing.T) {
	valid := mustWrite(t, sampleSections())
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"bad magic", []byte("NOTSNAP\x00aaaaaaaa"), ErrBadMagic},
		{"bad version", func() []byte {
			b := append([]byte(nil), valid...)
			putU32(b[8:12], 99)
			return b
		}(), ErrBadMagic},
		{"header cut", valid[:7], ErrTruncated},
		{"missing end marker", valid[:len(valid)-24], ErrTruncated},
		{"payload bit flip", func() []byte {
			b := append([]byte(nil), valid...)
			b[16+24] ^= 0x40 // first payload byte of the first section
			return b
		}(), ErrChecksum},
		{"crc bit flip", func() []byte {
			b := append([]byte(nil), valid...)
			b[16+16] ^= 0x01 // crc field of the first section header
			return b
		}(), ErrChecksum},
		{"implausible length", func() []byte {
			b := append([]byte(nil), valid...)
			putU64(b[16+8:16+16], maxSectionLen+1)
			return b
		}(), ErrChecksum},
		{"nonzero end length", func() []byte {
			var buf bytes.Buffer
			if err := Write(&buf, nil); err != nil {
				t.Fatal(err)
			}
			b := buf.Bytes()
			putU64(b[16+8:16+16], 8)
			return b
		}(), ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(tc.data))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if !typedErr(err) {
				t.Fatalf("error %v wraps more than one sentinel", err)
			}
		})
	}
}

// TestReadTruncationEveryByte is the container half of the crash
// battery: a valid file cut at ANY byte offset must yield a typed
// error, never a parse of phantom data.
func TestReadTruncationEveryByte(t *testing.T) {
	valid := mustWrite(t, sampleSections())
	for cut := 0; cut < len(valid); cut++ {
		_, err := Read(bytes.NewReader(valid[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d parsed successfully", cut, len(valid))
		}
		if !typedErr(err) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
}

// TestReadBitFlipEveryByte flips one bit at every offset of a valid
// file. The container must never panic; whenever it does parse, the
// damage must be confined to header fields the CRC does not cover (the
// tag bytes and the reserved pad), never to payload content.
func TestReadBitFlipEveryByte(t *testing.T) {
	valid := mustWrite(t, sampleSections())
	orig, err := Read(bytes.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(valid); off++ {
		b := append([]byte(nil), valid...)
		b[off] ^= 0x10
		f, err := Read(bytes.NewReader(b))
		if err != nil {
			if !typedErr(err) {
				t.Fatalf("flip at %d: untyped error %v", off, err)
			}
			continue
		}
		if len(f.Sections) != len(orig.Sections) {
			t.Fatalf("flip at %d: parsed %d sections, want %d", off, len(f.Sections), len(orig.Sections))
		}
		for i := range f.Sections {
			if !bytes.Equal(f.Sections[i].Payload, orig.Sections[i].Payload) {
				t.Fatalf("flip at %d: payload %d silently changed", off, i)
			}
		}
	}
}

// TestUnknownSectionRetained pins the forward-compatibility contract:
// a tag this version has never heard of parses fine (checksummed) and
// is retained for callers to skip.
func TestUnknownSectionRetained(t *testing.T) {
	raw := mustWrite(t, []Section{
		{Tag: "idx.meta", Payload: []byte{1}},
		{Tag: "fut.tag", Payload: []byte("from the future")},
	})
	f, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got, ok := f.Section("fut.tag"); !ok || string(got) != "from the future" {
		t.Fatalf("unknown section not retained: %q, %v", got, ok)
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	m := vec.NewMatrix(3, 2)
	for i := range m.Data {
		m.Data[i] = float64(i) * 1.5
	}
	e := &Encoder{}
	e.U8(7)
	e.U32(1 << 20)
	e.U64(1 << 40)
	e.I64(-12345)
	e.F64(math.Pi)
	e.F64(math.Inf(-1))
	e.Bool(true)
	e.Bool(false)
	e.Floats([]float64{1, -2.5, math.SmallestNonzeroFloat64})
	e.Floats(nil)
	e.Ints([]int{0, -1, 1 << 30})
	e.Int64s([]int64{math.MinInt64, math.MaxInt64})
	e.Int32s([]int32{-5, 5})
	e.Int16s([]int16{-300, 300})
	e.Bytes8([]byte("nested"))
	e.Matrix(m)
	e.Matrix(nil)

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U32(); got != 1<<20 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -12345 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := d.Bool(); !got {
		t.Error("Bool true")
	}
	if got := d.Bool(); got {
		t.Error("Bool false")
	}
	if got := d.Floats(); !reflect.DeepEqual(got, []float64{1, -2.5, math.SmallestNonzeroFloat64}) {
		t.Errorf("Floats = %v", got)
	}
	if got := d.Floats(); len(got) != 0 {
		t.Errorf("nil Floats = %v", got)
	}
	if got := d.Ints(); !reflect.DeepEqual(got, []int{0, -1, 1 << 30}) {
		t.Errorf("Ints = %v", got)
	}
	if got := d.Int64s(); !reflect.DeepEqual(got, []int64{math.MinInt64, math.MaxInt64}) {
		t.Errorf("Int64s = %v", got)
	}
	if got := d.Int32s(); !reflect.DeepEqual(got, []int32{-5, 5}) {
		t.Errorf("Int32s = %v", got)
	}
	if got := d.Int16s(); !reflect.DeepEqual(got, []int16{-300, 300}) {
		t.Errorf("Int16s = %v", got)
	}
	if got := d.Bytes8(); string(got) != "nested" {
		t.Errorf("Bytes8 = %q", got)
	}
	got := d.Matrix()
	if got == nil || got.Rows != 3 || got.Cols != 2 || !reflect.DeepEqual(got.Data, m.Data) {
		t.Errorf("Matrix = %+v", got)
	}
	if d.Matrix() != nil {
		t.Error("nil Matrix decoded non-nil")
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderFailures(t *testing.T) {
	t.Run("trailing bytes", func(t *testing.T) {
		d := NewDecoder([]byte{1, 2})
		d.U8()
		if err := d.Finish(); !errors.Is(err, ErrChecksum) {
			t.Fatalf("Finish = %v, want ErrChecksum", err)
		}
	})
	t.Run("short read", func(t *testing.T) {
		d := NewDecoder([]byte{1, 2})
		d.U64()
		if err := d.Err(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("Err = %v, want ErrTruncated", err)
		}
	})
	t.Run("non-boolean byte", func(t *testing.T) {
		d := NewDecoder([]byte{2})
		d.Bool()
		if err := d.Err(); !errors.Is(err, ErrChecksum) {
			t.Fatalf("Err = %v, want ErrChecksum", err)
		}
	})
	t.Run("lying length", func(t *testing.T) {
		e := &Encoder{}
		e.U64(1 << 60) // claims 2^60 floats with no data behind it
		d := NewDecoder(e.Bytes())
		if got := d.Floats(); got != nil {
			t.Fatalf("Floats on lying length = %v", got)
		}
		if err := d.Err(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("Err = %v, want ErrTruncated", err)
		}
	})
	t.Run("lying matrix shape", func(t *testing.T) {
		e := &Encoder{}
		e.U64(1 << 50)
		e.U64(1 << 50)
		d := NewDecoder(e.Bytes())
		if got := d.Matrix(); got != nil {
			t.Fatalf("Matrix on lying shape = %+v", got)
		}
		if err := d.Err(); !typedErr(d.Err()) {
			t.Fatalf("Err = %v, want typed", err)
		}
	})
	t.Run("sticky", func(t *testing.T) {
		d := NewDecoder(nil)
		d.U32()
		first := d.Err()
		d.F64()
		d.Floats()
		if d.Err() != first {
			t.Fatal("sticky error was replaced")
		}
	})
}

func TestBuilderSections(t *testing.T) {
	var b Builder
	b.Section("enc", func(e *Encoder) { e.U32(42) })
	b.Raw("raw", []byte{9})
	var buf bytes.Buffer
	if err := b.Flush(&buf); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	p, ok := f.Section("enc")
	if !ok {
		t.Fatal("enc section missing")
	}
	d := NewDecoder(p)
	if got := d.U32(); got != 42 || d.Finish() != nil {
		t.Fatalf("enc payload = %d (%v)", got, d.Finish())
	}
	if p, ok := f.Section("raw"); !ok || !bytes.Equal(p, []byte{9}) {
		t.Fatalf("raw payload = %v, %v", p, ok)
	}
}

// TestWriteFuzzCorpus regenerates the committed seed corpus for the two
// fuzz targets when UPDATE_FUZZ_CORPUS=1. The files pin interesting
// shapes (valid files, torn tails, flipped CRCs) so `make fuzz-smoke`
// exercises real structure from call one instead of random bytes.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("UPDATE_FUZZ_CORPUS") == "" {
		t.Skip("set UPDATE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	valid := mustWrite(t, sampleSections())
	flipped := append([]byte(nil), valid...)
	flipped[40] ^= 0x20
	snapSeeds := [][]byte{
		valid,
		valid[:len(valid)/2],
		flipped,
		[]byte("FEXSNAP\x00"),
		[]byte("not a snapshot at all"),
	}
	writeCorpus(t, "FuzzSnapshotLoad", snapSeeds)

	w, _, err := OpenWAL(filepath.Join(t.TempDir(), "wal"), 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(WALAdd, int64(i), []float64{1, 2, 3, float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Append(WALDelete, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	walFlip := append([]byte(nil), walBytes...)
	walFlip[walHdrLen+10] ^= 0x04
	walSeeds := [][]byte{
		walBytes,
		walBytes[:len(walBytes)-5],
		walFlip,
		walBytes[:walHdrLen],
		[]byte("FEXWAL\x00\x00"),
	}
	writeCorpus(t, "FuzzWALReplay", walSeeds)
}

func writeCorpus(t *testing.T, target string, seeds [][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
