package method

import (
	"context"
	"reflect"
	"testing"

	"fexipro/internal/data"
	"fexipro/internal/search"
)

func TestTableOrderMatchesPaper(t *testing.T) {
	want := []string{"Naive", "BallTree", "FastMKS", "SS-L", "F-S", "F-I", "F-SI", "F-SR", "F-SIR"}
	if got := TableNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("TableNames() = %v, want Table 4 order %v", got, want)
	}
	wantPruning := []string{"BallTree", "SS-L", "F-S", "F-SI", "F-SIR"}
	if got := PruningNames(); !reflect.DeepEqual(got, wantPruning) {
		t.Fatalf("PruningNames() = %v, want Tables 3/7 columns %v", got, wantPruning)
	}
}

func TestLookupAliasesAndCase(t *testing.T) {
	for _, tc := range []struct{ key, want string }{
		{"naive", "Naive"}, {"NAIVE", "Naive"}, {"scan", "Naive"},
		{"ssl", "SS-L"}, {"ss-l", "SS-L"},
		{"covertree", "FastMKS"}, {"fastmks", "FastMKS"},
		{"f-sir", "F-SIR"}, {"F-SIR", "F-SIR"}, {"f", "F"},
		{"pcatree", "PCATree"}, {"lemp", "LEMP"},
	} {
		d, ok := Lookup(tc.key)
		if !ok || d.Name != tc.want {
			t.Errorf("Lookup(%q) = %v, %v; want %s", tc.key, d, ok, tc.want)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("Get(nope) returned nil error")
	}
}

func TestExactExcludesPCATree(t *testing.T) {
	for _, name := range ExactNames() {
		if name == "PCATree" {
			t.Fatal("ExactNames contains the approximate PCATree")
		}
	}
	d, _ := Lookup("PCATree")
	if d.Exact {
		t.Fatal("PCATree marked exact")
	}
	if d.ShardInvariant {
		t.Fatal("PCATree marked shard-invariant")
	}
}

// TestEveryMethodBuildsAndSearches builds each registered method both
// sequentially and sharded over a tiny dataset and checks the top-k
// against the exhaustive scan (exact methods only; PCATree just has to
// answer). This is the registry-level round-trip; the experiments
// package repeats it through RunMethodSharded.
func TestEveryMethodBuildsAndSearches(t *testing.T) {
	p, err := data.ProfileByName("movielens")
	if err != nil {
		t.Fatal(err)
	}
	ds := data.Generate(p, 300, 4, 12)
	o := BuildOptions{SampleQueries: ds.Queries}
	ref, err := Build("Naive", ds.Items, o)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	for _, name := range Names() {
		for _, shards := range []int{1, 3} {
			s, err := Sharded(name, ds.Items, o, shards, 2)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			d, _ := Lookup(name)
			for qi := 0; qi < ds.Queries.Rows; qi++ {
				q := ds.Queries.Row(qi)
				got := s.Search(q, k)
				if len(got) != k {
					t.Fatalf("%s shards=%d q%d: %d results, want %d", name, shards, qi, len(got), k)
				}
				if !d.Exact {
					continue
				}
				want := ref.Search(q, k)
				for i := range want {
					if got[i].ID != want[i].ID || !approxEq(got[i].Score, want[i].Score) {
						t.Fatalf("%s shards=%d q%d r%d: got %d:%g want %d:%g",
							name, shards, qi, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
					}
				}
			}
			if cs, ok := s.(search.ContextSearcher); ok {
				if _, err := cs.SearchContext(context.Background(), ds.Queries.Row(0), k); err != nil {
					t.Fatalf("%s shards=%d: SearchContext: %v", name, shards, err)
				}
			}
		}
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-7 && d > -1e-7
}

func TestCostModelPredict(t *testing.T) {
	m := CostModel{Setup: 1e-6, PerItem: 1e-9, PerDim: 1e-9, PrunePrior: 0.9}
	f := Features{N: 100000, D: 50, K: 10, Shards: 1, PruneFrac: -1}
	base := m.Predict(f)
	if base <= m.Setup {
		t.Fatalf("Predict = %g, want > setup", base)
	}
	// More observed pruning must predict cheaper.
	f.PruneFrac = 0.99
	if highPrune := m.Predict(f); highPrune >= base {
		t.Fatalf("prune 0.99 cost %g >= prior cost %g", highPrune, base)
	}
	// Parallelism divides the scan term.
	f.PruneFrac = -1
	f.Shards, f.Workers = 4, 4
	if par := m.Predict(f); par >= base {
		t.Fatalf("4-way cost %g >= sequential %g", par, base)
	}
	// Workers clamp parallelism to the pool size.
	if (Features{Shards: 8, Workers: 2}).Parallelism() != 2 {
		t.Fatal("parallelism not clamped by workers")
	}
	if (Features{}).Parallelism() != 1 {
		t.Fatal("zero features parallelism != 1")
	}
}

func TestRegisterRejectsIncompleteAndDuplicate(t *testing.T) {
	mustPanic := func(name string, d Descriptor) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		Register(d)
	}
	mustPanic("incomplete", Descriptor{Name: "X"})
	d, _ := Lookup("Naive")
	mustPanic("duplicate", *d)
}
