package method

import (
	"fexipro/internal/balltree"
	"fexipro/internal/core"
	"fexipro/internal/covertree"
	"fexipro/internal/engine"
	"fexipro/internal/lemp"
	"fexipro/internal/pcatree"
	"fexipro/internal/scan"
	"fexipro/internal/search"
	"fexipro/internal/vec"
)

// The descriptors below register every retrieval method the repository
// implements, in a fixed order: Table-flagged entries reproduce the
// paper's Table 4 column order exactly (Naive, BallTree, FastMKS, SS-L,
// F-S, F-I, F-SI, F-SR, F-SIR), with the off-table methods (SS, LEMP,
// PCATree, bare F) interleaved where they fit the family grouping.
//
// Cost-model coefficients are priors in the literal sense: close enough
// to rank a blocked scan against a pruned index on cold start, and
// replaced by online EWMA calibration (internal/plan) or an offline
// `fexcalibrate -fit` sweep as soon as observations exist.
func init() {
	Register(Descriptor{
		Name:           "Naive",
		Aliases:        []string{"scan"},
		Doc:            "exhaustive blocked scan; no preprocessing, no pruning",
		Exact:          true,
		Dynamic:        true,
		ShardInvariant: true,
		Table:          true,
		AutoCandidate:  true,
		Build: func(items *vec.Matrix, o BuildOptions) (search.Searcher, error) {
			return scan.NewNaive(items), nil
		},
		NewKernel: func(items *vec.Matrix, o BuildOptions, shards int) (engine.Kernel, error) {
			return scan.NewNaiveKernel(scan.NewNaive(items), shards), nil
		},
		Cost: CostModel{Setup: 2e-7, PerItem: 2e-10, PerDim: 1.2e-9, PrunePrior: 0},
	})
	Register(Descriptor{
		Name:           "BallTree",
		Doc:            "metric-tree exact MIPS of Ram & Gray",
		Exact:          true,
		ShardInvariant: true,
		Table:          true,
		Pruning:        true,
		Build: func(items *vec.Matrix, o BuildOptions) (search.Searcher, error) {
			return balltree.New(items, o.LeafSize), nil
		},
		NewKernel: func(items *vec.Matrix, o BuildOptions, shards int) (engine.Kernel, error) {
			return balltree.NewKernel(items, o.LeafSize, shards), nil
		},
		Cost: CostModel{Setup: 5e-7, PerItem: 4e-9, PerDim: 1.2e-9, PrunePrior: 0.7},
	})
	Register(Descriptor{
		Name:           "FastMKS",
		Aliases:        []string{"covertree"},
		Doc:            "cover-tree max-kernel search of Curtin et al.",
		Exact:          true,
		ShardInvariant: true,
		Table:          true,
		Build: func(items *vec.Matrix, o BuildOptions) (search.Searcher, error) {
			return covertree.New(items, o.LeafSize), nil
		},
		NewKernel: func(items *vec.Matrix, o BuildOptions, shards int) (engine.Kernel, error) {
			return covertree.NewKernel(items, o.LeafSize, shards), nil
		},
		Cost: CostModel{Setup: 5e-7, PerItem: 6e-9, PerDim: 1.2e-9, PrunePrior: 0.5},
	})
	Register(Descriptor{
		Name:           "SS",
		Doc:            "Cauchy–Schwarz sorted scan with incremental pruning",
		Exact:          true,
		ShardInvariant: true,
		Build: func(items *vec.Matrix, o BuildOptions) (search.Searcher, error) {
			return scan.NewSS(items, o.W), nil
		},
		NewKernel: func(items *vec.Matrix, o BuildOptions, shards int) (engine.Kernel, error) {
			return scan.NewSSKernel(scan.NewSS(items, o.W), shards), nil
		},
		Cost: CostModel{Setup: 3e-7, PerItem: 1.2e-9, PerDim: 1.2e-9, PrunePrior: 0.5},
	})
	Register(Descriptor{
		Name:           "SS-L",
		Aliases:        []string{"ssl"},
		Doc:            "LEMP-style normalized sorted scan with tuned checking dimension",
		Exact:          true,
		ShardInvariant: true,
		Table:          true,
		Pruning:        true,
		AutoCandidate:  true,
		Build: func(items *vec.Matrix, o BuildOptions) (search.Searcher, error) {
			return scan.NewSSL(items, scan.SSLOptions{SampleQueries: o.SampleQueries}), nil
		},
		NewKernel: func(items *vec.Matrix, o BuildOptions, shards int) (engine.Kernel, error) {
			return scan.NewSSLKernel(scan.NewSSL(items, scan.SSLOptions{SampleQueries: o.SampleQueries}), shards), nil
		},
		Cost: CostModel{Setup: 3e-7, PerItem: 1.5e-9, PerDim: 1.2e-9, PrunePrior: 0.8},
	})
	Register(Descriptor{
		Name:           "LEMP",
		Doc:            "bucketed batch top-k join engine of Teflioudi et al.",
		Exact:          true,
		ShardInvariant: true,
		Build: func(items *vec.Matrix, o BuildOptions) (search.Searcher, error) {
			return lemp.New(items, lemp.Options{BucketSize: o.BucketSize, SampleQueries: o.SampleQueries}), nil
		},
		NewKernel: func(items *vec.Matrix, o BuildOptions, shards int) (engine.Kernel, error) {
			return lemp.NewKernel(lemp.New(items, lemp.Options{BucketSize: o.BucketSize, SampleQueries: o.SampleQueries}), shards), nil
		},
		Cost: CostModel{Setup: 5e-7, PerItem: 1.5e-9, PerDim: 1.2e-9, PrunePrior: 0.8},
	})
	Register(Descriptor{
		Name: "PCATree",
		Doc:  "APPROXIMATE PCA-tree of Bachrach et al.; excluded from planning unless approximate methods are allowed",
		Build: func(items *vec.Matrix, o BuildOptions) (search.Searcher, error) {
			return pcatree.New(items, pcatree.Options{LeafSize: o.LeafSize, SpillFraction: o.SpillFraction}), nil
		},
		NewKernel: func(items *vec.Matrix, o BuildOptions, shards int) (engine.Kernel, error) {
			return pcatree.NewKernel(pcatree.New(items, pcatree.Options{LeafSize: o.LeafSize, SpillFraction: o.SpillFraction}), shards), nil
		},
		Cost: CostModel{Setup: 5e-7, PerItem: 3e-9, PerDim: 1.2e-9, PrunePrior: 0.95},
	})
	// The FEXIPRO family: one descriptor per paper variant, all built
	// through core.OptionsForVariant so the name → technique-set parsing
	// stays in internal/core where the techniques live.
	fex := func(variant string, pruning, table, auto bool, cost CostModel) {
		Register(Descriptor{
			Name:           variant,
			Doc:            "FEXIPRO variant " + variant,
			Exact:          true,
			Dynamic:        true,
			ShardInvariant: true,
			Table:          table,
			Pruning:        pruning,
			AutoCandidate:  auto,
			Build: func(items *vec.Matrix, o BuildOptions) (search.Searcher, error) {
				idx, err := newCoreIndex(variant, items, o)
				if err != nil {
					return nil, err
				}
				return core.NewRetriever(idx), nil
			},
			NewKernel: func(items *vec.Matrix, o BuildOptions, shards int) (engine.Kernel, error) {
				idx, err := newCoreIndex(variant, items, o)
				if err != nil {
					return nil, err
				}
				return core.NewSharded(idx, shards), nil
			},
			Cost: cost,
		})
	}
	fex("F-S", true, true, false, CostModel{Setup: 2e-6, PerItem: 1.5e-9, PerDim: 1.2e-9, PrunePrior: 0.85})
	fex("F-I", false, true, false, CostModel{Setup: 2e-6, PerItem: 1.2e-9, PerDim: 1.2e-9, PrunePrior: 0.9})
	fex("F-SI", true, true, false, CostModel{Setup: 2e-6, PerItem: 1.2e-9, PerDim: 1.2e-9, PrunePrior: 0.95})
	fex("F-SR", false, true, false, CostModel{Setup: 3e-6, PerItem: 1.5e-9, PerDim: 1.2e-9, PrunePrior: 0.9})
	fex("F-SIR", true, true, true, CostModel{Setup: 3e-6, PerItem: 1.2e-9, PerDim: 1.2e-9, PrunePrior: 0.97})
	fex("F", false, false, false, CostModel{Setup: 1e-6, PerItem: 1.5e-9, PerDim: 1.2e-9, PrunePrior: 0.3})
}

// newCoreIndex builds a FEXIPRO core index for a paper variant with the
// registry's tuning knobs applied.
func newCoreIndex(variant string, items *vec.Matrix, o BuildOptions) (*core.Index, error) {
	opts, err := core.OptionsForVariant(variant)
	if err != nil {
		return nil, err
	}
	opts.Rho = o.Rho
	opts.E = o.E
	opts.W = o.W
	opts.CompactInts = o.CompactInts
	return core.NewIndex(items, opts)
}
