package method

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestNoMethodTablesOutsideRegistry is the mechanized form of the
// refactor's acceptance check: no string-keyed method dispatch table
// may survive outside internal/method. It parses every non-test Go
// file in the module and fails on
//
//   - a switch `case "<MethodName>":` clause, or
//   - a composite literal containing three or more distinct method
//     names (a name table like the old experiments.MethodNames),
//
// anywhere but this package. Single names stay legal — calling
// Build("F-SIR") or defaulting a flag to "F-SIR" is an invocation, not
// a dispatch table — and so do pairs: the paper's figures are DEFINED
// as two-method comparisons ("SS-L vs F-SIR over d"), which is figure
// parameterization, not dispatch. Test files are exempt: they pin
// registry behavior by enumerating names on purpose.
func TestNoMethodTablesOutsideRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, n := range Names() {
		names[n] = true
	}
	root := moduleRoot(t)
	selfDir := filepath.Join(root, "internal", "method")
	fset := token.NewFileSet()
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			base := info.Name()
			if base == ".git" || base == "testdata" || path == selfDir {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				for _, e := range n.List {
					if name, ok := methodNameLit(e, names); ok {
						t.Errorf("%s: switch case on method name %q — dispatch must go through internal/method",
							fset.Position(e.Pos()), name)
					}
				}
			case *ast.CompositeLit:
				distinct := map[string]bool{}
				for _, e := range n.Elts {
					if name, ok := methodNameLit(e, names); ok {
						distinct[name] = true
					}
				}
				if len(distinct) >= 3 {
					t.Errorf("%s: literal method-name table %v — derive from internal/method instead",
						fset.Position(n.Pos()), keys(distinct))
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func methodNameLit(e ast.Expr, names map[string]bool) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, names[s]
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func moduleRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}
