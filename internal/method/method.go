// Package method is the single registry of retrieval methods: one
// Descriptor per method couples the paper name (and CLI aliases) with
// the builder, the sharded-execution kernel factory, capability flags,
// and an analytic cost model. Every dispatch site in the repository —
// the experiments harness, the public constructors in the root package,
// server.Config, and the fexserve/fexbench/fexquery/fexcalibrate
// binaries — resolves method names through this table, so adding a
// method is one Register call, and no string-keyed method switch exists
// anywhere else (internal/method's own tests enforce that at the source
// level).
package method

import (
	"fmt"
	"sort"
	"strings"

	"fexipro/internal/engine"
	"fexipro/internal/search"
	"fexipro/internal/vec"
)

// BuildOptions carries every tuning knob any registered method accepts.
// Zero values select the same defaults the constructors used before the
// registry existed; fields a method does not use are ignored by its
// Descriptor.
type BuildOptions struct {
	// SampleQueries drives LEMP-style w tuning for SS-L and LEMP (nil =
	// untuned defaults). Callers pass the handful of rows they want used;
	// the registry does not truncate.
	SampleQueries *vec.Matrix
	// W is the checking dimension: SS's scan prefix, or the FEXIPRO
	// override for the ρ-derived w (0 = derive).
	W int
	// Rho, E, CompactInts are the FEXIPRO family's preprocessing
	// parameters (zero values = paper defaults ρ=0.7, e=100, int32).
	Rho, E      float64
	CompactInts bool
	// LeafSize bounds tree leaves for BallTree/FastMKS/PCATree (0 = 20).
	LeafSize int
	// BucketSize is LEMP's norm-bucket size (0 = default).
	BucketSize int
	// SpillFraction is PCATree's spill overlap (0 = no spill).
	SpillFraction float64
}

// CostModel is one method's analytic per-query cost in seconds:
//
//	cost = Setup + (PerItem·n + PerDim·(1-prune)·n·d) / parallelism
//
// Setup covers the query transform (SVD projection, integer floors),
// PerItem the per-candidate bound check (or amortized tree-node visit),
// and PerDim one multiply-add of a full inner product. PrunePrior is
// the fraction of items expected to be eliminated before their full
// product when no observed pruning fraction is available. The
// coefficients are deliberately coarse priors — the planner calibrates
// them online (EWMA of observed cost) and fexcalibrate -fit replaces
// them with least-squares fits over real sweeps.
type CostModel struct {
	Setup      float64 `json:"setup"`
	PerItem    float64 `json:"perItem"`
	PerDim     float64 `json:"perDim"`
	PrunePrior float64 `json:"prunePrior"`
}

// Features are the planner-visible query/workload parameters the cost
// model predicts from.
type Features struct {
	N, D, K         int
	Shards, Workers int
	// PruneFrac is the observed fraction of items pruned before a full
	// product (search.Stats.TotalPruned / n); a negative value selects
	// the model's prior.
	PruneFrac float64
}

// Parallelism is the effective per-query speedup of the sharded
// execution engine: shards bounded by the worker pool, never below 1.
func (f Features) Parallelism() float64 {
	s := f.Shards
	if s < 1 {
		s = 1
	}
	w := f.Workers
	if w <= 0 || w > s {
		w = s
	}
	return float64(w)
}

// Predict returns the modeled per-query seconds for these features.
func (m CostModel) Predict(f Features) float64 {
	prune := f.PruneFrac
	if prune < 0 {
		prune = m.PrunePrior
	}
	if prune < 0 {
		prune = 0
	} else if prune > 1 {
		prune = 1
	}
	n := float64(f.N)
	survivors := (1 - prune) * n
	return m.Setup + (m.PerItem*n+m.PerDim*survivors*float64(f.D))/f.Parallelism()
}

// Descriptor registers one retrieval method.
type Descriptor struct {
	// Name is the canonical paper name ("F-SIR", "SS-L", "BallTree", …).
	Name string
	// Aliases are extra lookup keys (lookup is case-insensitive, so only
	// genuinely different spellings belong here, e.g. "ssl").
	Aliases []string
	// Doc is a one-line description for -help style listings.
	Doc string

	// Exact marks methods that return the provably exact top-k. The
	// planner never picks a non-exact method unless explicitly allowed.
	Exact bool
	// Dynamic marks methods whose index admits online add/delete
	// (served by core.DynamicIndex or a plain catalog scan).
	Dynamic bool
	// ShardInvariant marks methods whose sharded execution is
	// bit-identical to the single-shard scan for every shard count
	// (searchtest.CheckSharded-pinned).
	ShardInvariant bool
	// Table includes the method in the paper's Table 4 method list, in
	// registration order.
	Table bool
	// Pruning includes the method in the Tables 3/7 pruning columns.
	Pruning bool
	// AutoCandidate includes the method in the default `-method auto`
	// planner pool. The pool spans the blocked-scan vs pruned-scan vs
	// full-index tradeoff ("To Index or Not to Index") without building
	// every registered index per catalog.
	AutoCandidate bool

	// Build constructs the sequential searcher.
	Build func(items *vec.Matrix, o BuildOptions) (search.Searcher, error)
	// NewKernel constructs the sharded-execution kernel (shards ≥ 2).
	// Every registered method must provide one; the registrycover lint
	// check additionally demands CheckSharded coverage for the kernel's
	// package.
	NewKernel func(items *vec.Matrix, o BuildOptions, shards int) (engine.Kernel, error)

	// Cost is the method's prior cost model (see CostModel).
	Cost CostModel
}

var (
	ordered []*Descriptor
	byKey   = map[string]*Descriptor{}
)

// Register adds a descriptor to the registry. It panics on a duplicate
// name/alias or a descriptor missing its builder or kernel factory —
// registration happens in init, so these are programming errors.
func Register(d Descriptor) {
	if d.Name == "" || d.Build == nil || d.NewKernel == nil {
		panic(fmt.Sprintf("method: incomplete descriptor %q", d.Name))
	}
	dc := d
	for _, key := range append([]string{d.Name}, d.Aliases...) {
		k := strings.ToLower(key)
		if _, dup := byKey[k]; dup {
			panic(fmt.Sprintf("method: duplicate registration %q", key))
		}
		byKey[k] = &dc
	}
	ordered = append(ordered, &dc)
}

// Lookup resolves a method name or alias, case-insensitively.
func Lookup(name string) (*Descriptor, bool) {
	d, ok := byKey[strings.ToLower(name)]
	return d, ok
}

// Get is Lookup returning a descriptive error for unknown names.
func Get(name string) (*Descriptor, error) {
	d, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("method: unknown method %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	return d, nil
}

// Names lists every registered method in registration order.
func Names() []string {
	out := make([]string, len(ordered))
	for i, d := range ordered {
		out[i] = d.Name
	}
	return out
}

// TableNames lists the methods of the paper's Table 4, in table order.
func TableNames() []string { return filtered(func(d *Descriptor) bool { return d.Table }) }

// PruningNames lists the pruning-table methods (Tables 3 and 7 columns).
func PruningNames() []string { return filtered(func(d *Descriptor) bool { return d.Pruning }) }

// ExactNames lists the provably exact methods — the planner's candidate
// pool when approximate methods are not explicitly allowed.
func ExactNames() []string { return filtered(func(d *Descriptor) bool { return d.Exact }) }

// AutoNames lists the default `-method auto` candidate pool.
func AutoNames() []string { return filtered(func(d *Descriptor) bool { return d.AutoCandidate }) }

func filtered(keep func(*Descriptor) bool) []string {
	var out []string
	for _, d := range ordered {
		if keep(d) {
			out = append(out, d.Name)
		}
	}
	return out
}

// Aliases returns every lookup key (canonical names and aliases),
// sorted, for CLI usage strings.
func Aliases() []string {
	out := make([]string, 0, len(byKey))
	for k := range byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named method's sequential searcher.
func Build(name string, items *vec.Matrix, o BuildOptions) (search.Searcher, error) {
	d, err := Get(name)
	if err != nil {
		return nil, err
	}
	return d.Build(items, o)
}

// Sharded constructs the named method partitioned into shards answered
// by a pool of workers goroutines through the sharded execution engine;
// shards ≤ 1 falls back to the sequential Build.
func Sharded(name string, items *vec.Matrix, o BuildOptions, shards, workers int) (search.Searcher, error) {
	d, err := Get(name)
	if err != nil {
		return nil, err
	}
	if shards <= 1 {
		return d.Build(items, o)
	}
	kern, err := d.NewKernel(items, o, shards)
	if err != nil {
		return nil, err
	}
	return engine.New(kern, workers), nil
}
