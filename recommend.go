package fexipro

import (
	"fmt"

	"fexipro/internal/data"
	"fexipro/internal/mf"
)

// Rating is one observed (user, item, value) triple, the input of the
// learning phase.
type Rating struct {
	User, Item int
	Value      float64
}

// TrainConfig configures the learning phase of the recommender.
type TrainConfig struct {
	// Dim is the factorization rank d (default 32).
	Dim int
	// Algorithm is "ccd" (LIBPMF-style CCD++, default) or "sgd".
	Algorithm string
	// Lambda is the L2 regularization weight (default 0.05).
	Lambda float64
	// Iterations: outer sweeps for CCD, epochs for SGD (default 10/30).
	Iterations int
	// Seed makes training deterministic.
	Seed int64
}

// Recommender is the end-to-end system of the paper's Figure 1: a
// learning phase (matrix factorization) feeding a retrieval phase
// (FEXIPRO top-k inner-product search).
type Recommender struct {
	model    *mf.Model
	searcher *FEXIPRO
}

// Train factorizes the ratings into user/item factors and builds the
// FEXIPRO retrieval index over the item factors.
func Train(ratings []Rating, numUsers, numItems int, cfg TrainConfig, searchOpts Options) (*Recommender, error) {
	if cfg.Dim <= 0 {
		cfg.Dim = 32
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 0.05
	}
	converted := make([]data.Rating, len(ratings))
	for i, r := range ratings {
		converted[i] = data.Rating{User: r.User, Item: r.Item, Value: r.Value}
	}

	var model *mf.Model
	var err error
	switch cfg.Algorithm {
	case "", "ccd":
		c := mf.DefaultCCDConfig(cfg.Dim)
		c.Lambda = cfg.Lambda
		if cfg.Iterations > 0 {
			c.OuterIters = cfg.Iterations
		}
		if cfg.Seed != 0 {
			c.Seed = cfg.Seed
		}
		model, err = mf.TrainCCD(converted, numUsers, numItems, c)
	case "sgd":
		c := mf.DefaultSGDConfig(cfg.Dim)
		c.Lambda = cfg.Lambda
		if cfg.Iterations > 0 {
			c.Epochs = cfg.Iterations
		}
		if cfg.Seed != 0 {
			c.Seed = cfg.Seed
		}
		model, err = mf.TrainSGD(converted, numUsers, numItems, c)
	default:
		return nil, fmt.Errorf("fexipro: unknown training algorithm %q", cfg.Algorithm)
	}
	if err != nil {
		return nil, err
	}

	searcher, err := New(&Matrix{m: model.Items}, searchOpts)
	if err != nil {
		return nil, err
	}
	return &Recommender{model: model, searcher: searcher}, nil
}

// Recommend returns the top-k items for a learned user, by exact
// inner-product retrieval over the item factors.
func (r *Recommender) Recommend(user int, k int) ([]Result, error) {
	if user < 0 || user >= r.model.Users.Rows {
		return nil, fmt.Errorf("fexipro: user %d out of range [0,%d)", user, r.model.Users.Rows)
	}
	return r.searcher.Search(r.model.Users.Row(user), k), nil
}

// RecommendVector returns the top-k items for an ad-hoc user vector —
// the dynamically adjusted query scenario (FindMe, Xbox) that motivates
// FEXIPRO's single-query design.
func (r *Recommender) RecommendVector(q []float64, k int) []Result {
	return r.searcher.Search(q, k)
}

// UserVector returns (a copy of) the learned factor vector of a user.
func (r *Recommender) UserVector(user int) []float64 {
	row := r.model.Users.Row(user)
	out := make([]float64, len(row))
	copy(out, row)
	return out
}

// ItemFactors returns the learned item factor matrix (shared storage; do
// not mutate).
func (r *Recommender) ItemFactors() *Matrix { return &Matrix{m: r.model.Items} }

// UserFactors returns the learned user factor matrix (shared storage; do
// not mutate).
func (r *Recommender) UserFactors() *Matrix { return &Matrix{m: r.model.Users} }

// GlobalBias returns the rating offset added to qᵀp for rating
// prediction (retrieval order is unaffected by it).
func (r *Recommender) GlobalBias() float64 { return r.model.GlobalBias }

// RMSE evaluates rating-prediction accuracy on held-out ratings.
func (r *Recommender) RMSE(ratings []Rating) float64 {
	converted := make([]data.Rating, len(ratings))
	for i, rr := range ratings {
		converted[i] = data.Rating{User: rr.User, Item: rr.Item, Value: rr.Value}
	}
	return r.model.RMSE(converted)
}
