package fexipro

import (
	"fexipro/internal/metrics"
	"fexipro/internal/topk"
)

// RankingMetrics summarizes top-k recommendation quality over a set of
// evaluated users.
type RankingMetrics struct {
	// PrecisionAtK, RecallAtK, NDCGAtK, and MAP are averaged over users
	// that had at least one relevant held-out item.
	PrecisionAtK, RecallAtK, NDCGAtK, MAP float64
	// Users is the number of users that entered the averages.
	Users int
}

// EvaluateRanking measures ranking quality on held-out ratings: for each
// user appearing in test, items the user rated at or above relevanceBar
// count as relevant, the recommender's top-k list is scored against
// them, and the metrics are averaged. Items can legitimately appear in
// both train and recommendations; callers wanting strict held-out
// evaluation should exclude training items from test beforehand.
func (r *Recommender) EvaluateRanking(test []Rating, k int, relevanceBar float64) (RankingMetrics, error) {
	relevant := map[int]map[int]bool{}
	for _, t := range test {
		if t.Value >= relevanceBar {
			if relevant[t.User] == nil {
				relevant[t.User] = map[int]bool{}
			}
			relevant[t.User][t.Item] = true
		}
	}

	var out RankingMetrics
	var lists [][]topk.Result
	var rels []map[int]bool
	for user, rel := range relevant {
		res, err := r.Recommend(user, k)
		if err != nil {
			return RankingMetrics{}, err
		}
		internalRes := make([]topk.Result, len(res))
		for i, rr := range res {
			internalRes[i] = topk.Result{ID: rr.ID, Score: rr.Score}
		}
		out.PrecisionAtK += metrics.PrecisionAtK(internalRes, rel, k)
		out.RecallAtK += metrics.RecallAtK(internalRes, rel, k)
		out.NDCGAtK += metrics.NDCGAtK(internalRes, rel, k)
		lists = append(lists, internalRes)
		rels = append(rels, rel)
		out.Users++
	}
	if out.Users == 0 {
		return out, nil
	}
	n := float64(out.Users)
	out.PrecisionAtK /= n
	out.RecallAtK /= n
	out.NDCGAtK /= n
	mapScore, err := metrics.MeanAveragePrecision(lists, rels, k)
	if err != nil {
		return RankingMetrics{}, err
	}
	out.MAP = mapScore
	return out, nil
}
