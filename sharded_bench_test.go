// BenchmarkShardedSearch measures the sharded execution engine against
// the classic sequential retriever on the same index and workload. On a
// single-core box the engine cannot beat the sequential scan — the
// interesting numbers there are its fan-out/merge overhead and the
// shared-threshold pruning quality (fullIP/query should match the
// sequential run closely); with GOMAXPROCS > 1 the per-query latency is
// expected to drop roughly with the worker count.
//
// Run via `make bench-shard` or:
//
//	go test -bench=BenchmarkShardedSearch -benchtime=1x -run='^$' .
package fexipro_test

import (
	"fmt"
	"runtime"
	"testing"

	"fexipro/internal/experiments"
)

func BenchmarkShardedSearch(b *testing.B) {
	const profile, method, k = "netflix", "F-SIR", 10
	ds := benchDataset(b, profile)
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name            string
		shards, workers int
	}{
		{"sequential", 1, 1},
		{"shards=2/workers=2", 2, 2},
		{"shards=8/workers=2", 8, 2},
		{fmt.Sprintf("shards=%d/workers=%d", 4*procs, procs), 4 * procs, procs},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			built, err := experiments.BuildSharded(method, ds.Items, ds.Queries, c.shards, c.workers)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var full int
			for i := 0; i < b.N; i++ {
				full = 0
				for qi := 0; qi < ds.Queries.Rows; qi++ {
					built.Searcher.Search(ds.Queries.Row(qi), k)
					full += built.Searcher.Stats().FullProducts
				}
			}
			b.ReportMetric(float64(full)/float64(ds.Queries.Rows), "fullIP/query")
			b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*ds.Queries.Rows), "µs/query")
		})
	}
}
