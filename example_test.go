package fexipro_test

import (
	"fmt"

	"fexipro"
)

// The minimal end-to-end flow: index item factors, search a user vector.
func ExampleNew() {
	items := fexipro.MatrixFromRows([][]float64{
		{0.9, 0.1, 0.0}, // item 0
		{0.2, 0.8, 0.1}, // item 1
		{0.1, 0.2, 0.9}, // item 2
		{0.5, 0.5, 0.5}, // item 3
	})
	s, err := fexipro.New(items, fexipro.Options{})
	if err != nil {
		panic(err)
	}
	user := []float64{1.0, 0.0, 0.2}
	for _, r := range s.Search(user, 2) {
		fmt.Printf("item %d score %.2f\n", r.ID, r.Score)
	}
	// Output:
	// item 0 score 0.90
	// item 3 score 0.60
}

// Above-threshold retrieval returns every item scoring at least t.
func ExampleFEXIPRO_SearchAbove() {
	items := fexipro.MatrixFromRows([][]float64{
		{1, 0}, {0.8, 0}, {0.5, 0}, {0.1, 0},
	})
	s, err := fexipro.New(items, fexipro.Options{})
	if err != nil {
		panic(err)
	}
	for _, r := range s.SearchAbove([]float64{1, 0}, 0.5) {
		fmt.Printf("item %d score %.1f\n", r.ID, r.Score)
	}
	// Output:
	// item 0 score 1.0
	// item 1 score 0.8
	// item 2 score 0.5
}

// A mutable catalog: add and retire items with stable IDs.
func ExampleNewDynamic() {
	initial := fexipro.MatrixFromRows([][]float64{{1, 0}, {0, 1}})
	d, err := fexipro.NewDynamic(initial, fexipro.Options{})
	if err != nil {
		panic(err)
	}
	id, err := d.Add([]float64{2, 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("new item id:", id)
	top := d.Search([]float64{1, 1}, 1)
	fmt.Println("top item:", top[0].ID)
	if err := d.Delete(id); err != nil {
		panic(err)
	}
	top = d.Search([]float64{1, 1}, 1)
	fmt.Println("after delete:", top[0].ID)
	// Output:
	// new item id: 2
	// top item: 2
	// after delete: 0
}

// All-pairs top-k: the strongest (user, item) affinities in the system.
func ExampleTopPairs() {
	users := fexipro.MatrixFromRows([][]float64{{1, 0}, {0, 1}})
	items := fexipro.MatrixFromRows([][]float64{{3, 0}, {0, 2}, {1, 1}})
	pairs, err := fexipro.TopPairs(users, items, 2)
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		fmt.Printf("user %d × item %d = %.0f\n", p.User, p.Item, p.Score)
	}
	// Output:
	// user 0 × item 0 = 3
	// user 1 × item 1 = 2
}
