// Benchmarks reproducing every table and figure of the paper's
// evaluation. Each BenchmarkTableN / BenchmarkFigN regenerates the data
// behind that exhibit; cmd/fexbench prints the same content as formatted
// tables at full scale.
//
// Default benchmark sizes are scaled down (≤20k items, 30 queries per
// dataset) so `go test -bench=. -benchmem` finishes in minutes on one
// core. Set FEX_BENCH_FULL=1 for the full Table 2 sizes (Yahoo capped at
// 100k items as documented in DESIGN.md).
package fexipro_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"fexipro/internal/batch"
	"fexipro/internal/core"
	"fexipro/internal/data"
	"fexipro/internal/engine"
	"fexipro/internal/experiments"
	"fexipro/internal/lemp"
	"fexipro/internal/obs"
	"fexipro/internal/pcatree"
	"fexipro/internal/scan"
	"fexipro/internal/svd"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

const benchQueries = 30

func benchItems(p data.Profile) int {
	if os.Getenv("FEX_BENCH_FULL") != "" {
		return p.BenchItems
	}
	if p.BenchItems > 20000 {
		return 20000
	}
	return p.BenchItems
}

var (
	dsCache   = map[string]*data.Dataset{}
	dsCacheMu sync.Mutex
)

func benchDataset(b *testing.B, profile string) *data.Dataset {
	b.Helper()
	dsCacheMu.Lock()
	defer dsCacheMu.Unlock()
	if ds, ok := dsCache[profile]; ok {
		return ds
	}
	p, err := data.ProfileByName(profile)
	if err != nil {
		b.Fatal(err)
	}
	ds := data.Generate(p, benchItems(p), benchQueries, 0)
	dsCache[profile] = ds
	return ds
}

var (
	builtCache   = map[string]experiments.Built{}
	builtCacheMu sync.Mutex
)

func benchSearcher(b *testing.B, profile, method string) experiments.Built {
	b.Helper()
	key := profile + "/" + method
	builtCacheMu.Lock()
	defer builtCacheMu.Unlock()
	if s, ok := builtCache[key]; ok {
		return s
	}
	ds := benchDataset(b, profile)
	built, err := experiments.Build(method, ds.Items, ds.Queries)
	if err != nil {
		b.Fatal(err)
	}
	builtCache[key] = built
	return built
}

// runWorkload executes every benchmark query once and reports the metric
// of Tables 3/7 (average entire-qᵀp computations per query).
func runWorkload(b *testing.B, profile, method string, k int) {
	b.Helper()
	ds := benchDataset(b, profile)
	built := benchSearcher(b, profile, method)
	b.ResetTimer()
	var full int
	for i := 0; i < b.N; i++ {
		full = 0
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			built.Searcher.Search(ds.Queries.Row(qi), k)
			full += built.Searcher.Stats().FullProducts
		}
	}
	b.ReportMetric(float64(full)/float64(ds.Queries.Rows), "fullIP/query")
	b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*ds.Queries.Rows), "µs/query")
}

var benchProfiles = []string{"movielens", "yelp", "netflix", "yahoo"}

// BenchmarkTable3 — average number of entire qᵀp computations, k=1.
func BenchmarkTable3(b *testing.B) {
	for _, p := range benchProfiles {
		for _, m := range []string{"BallTree", "SS-L", "F-S", "F-SI", "F-SIR"} {
			b.Run(p+"/"+m, func(b *testing.B) { runWorkload(b, p, m, 1) })
		}
	}
}

// BenchmarkTable4 — retrieval time, all nine methods, k=1.
func BenchmarkTable4(b *testing.B) {
	for _, p := range benchProfiles {
		for _, m := range experiments.MethodNames {
			b.Run(p+"/"+m, func(b *testing.B) { runWorkload(b, p, m, 1) })
		}
	}
}

// BenchmarkTable5 — MiniBatch blocked GEMM at the paper's batch sizes.
func BenchmarkTable5(b *testing.B) {
	for _, p := range benchProfiles {
		ds := benchDataset(b, p)
		for _, bs := range []int{1, 100, 10000} {
			for _, workers := range []int{1, 0} {
				name := fmt.Sprintf("%s/bs=%d/workers=%d", p, bs, workers)
				b.Run(name, func(b *testing.B) {
					mb := batch.New(ds.Items, batch.Options{BatchSize: bs, Workers: workers})
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						mb.TopKAll(ds.Queries, 1)
					}
				})
			}
		}
	}
}

// BenchmarkTable6 — LEMP batch top-k join across k.
func BenchmarkTable6(b *testing.B) {
	for _, p := range benchProfiles {
		ds := benchDataset(b, p)
		idx := lemp.New(ds.Items, lemp.Options{})
		for _, k := range []int{1, 2, 5, 10, 50} {
			b.Run(fmt.Sprintf("%s/k=%d", p, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					idx.TopKJoin(ds.Queries, k)
				}
			})
		}
	}
}

// BenchmarkTable7 — entire-computation counts for larger k.
func BenchmarkTable7(b *testing.B) {
	for _, p := range benchProfiles {
		for _, k := range []int{2, 5, 10, 50} {
			for _, m := range []string{"SS-L", "F-SI", "F-SIR"} {
				b.Run(fmt.Sprintf("%s/k=%d/%s", p, k, m), func(b *testing.B) { runWorkload(b, p, m, k) })
			}
		}
	}
}

// BenchmarkTable8 — retrieval times for larger k, all methods.
func BenchmarkTable8(b *testing.B) {
	for _, p := range benchProfiles {
		for _, k := range []int{2, 5, 10, 50} {
			for _, m := range []string{"Naive", "SS-L", "F-S", "F-SIR"} {
				b.Run(fmt.Sprintf("%s/k=%d/%s", p, k, m), func(b *testing.B) { runWorkload(b, p, m, k) })
			}
		}
	}
}

// BenchmarkFig6 — the speedup data of Figure 6 derives from Table 4;
// this bench times the two endpoints (Naive vs F-SIR) head to head.
func BenchmarkFig6(b *testing.B) {
	for _, p := range benchProfiles {
		for _, m := range []string{"Naive", "F-SIR"} {
			b.Run(p+"/"+m, func(b *testing.B) { runWorkload(b, p, m, 1) })
		}
	}
}

// BenchmarkFig7 — SS-L vs F-SIR across k (retrieval-time-vs-k curves).
func BenchmarkFig7(b *testing.B) {
	for _, p := range benchProfiles {
		for _, k := range []int{1, 5, 50} {
			for _, m := range []string{"SS-L", "F-SIR"} {
				b.Run(fmt.Sprintf("%s/k=%d/%s", p, k, m), func(b *testing.B) { runWorkload(b, p, m, k) })
			}
		}
	}
}

// BenchmarkFig8 — computing the average k-th inner product curve.
func BenchmarkFig8(b *testing.B) {
	for _, p := range benchProfiles {
		b.Run(p, func(b *testing.B) {
			ds := benchDataset(b, p)
			built := benchSearcher(b, p, "F-SIR")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for qi := 0; qi < ds.Queries.Rows; qi++ {
					built.Searcher.Search(ds.Queries.Row(qi), 50)
				}
			}
		})
	}
}

// BenchmarkFig9And12 — per-query cost/count distributions for F-SIR.
func BenchmarkFig9And12(b *testing.B) {
	for _, p := range benchProfiles {
		b.Run(p, func(b *testing.B) {
			ds := benchDataset(b, p)
			built := benchSearcher(b, p, "F-SIR")
			b.ResetTimer()
			var maxFull int
			for i := 0; i < b.N; i++ {
				maxFull = 0
				for qi := 0; qi < ds.Queries.Rows; qi++ {
					built.Searcher.Search(ds.Queries.Row(qi), 1)
					if f := built.Searcher.Stats().FullProducts; f > maxFull {
						maxFull = f
					}
				}
			}
			b.ReportMetric(float64(maxFull), "maxFullIP/query")
		})
	}
}

// BenchmarkFig10 — the ρ sweep: retrieval cost at each checking
// dimension derived from ρ.
func BenchmarkFig10(b *testing.B) {
	for _, p := range benchProfiles {
		ds := benchDataset(b, p)
		for _, rho := range []float64{0.5, 0.7, 0.9} {
			b.Run(fmt.Sprintf("%s/rho=%.1f", p, rho), func(b *testing.B) {
				idx, err := core.NewIndex(ds.Items, core.Options{SVD: true, Int: true, Reduction: true, Rho: rho})
				if err != nil {
					b.Fatal(err)
				}
				r := core.NewRetriever(idx)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for qi := 0; qi < ds.Queries.Rows; qi++ {
						r.Search(ds.Queries.Row(qi), 1)
					}
				}
				b.ReportMetric(float64(idx.W()), "w")
			})
		}
	}
}

// BenchmarkFig11 — the integer-scaling e sweep.
func BenchmarkFig11(b *testing.B) {
	for _, p := range benchProfiles {
		ds := benchDataset(b, p)
		for _, e := range []float64{10, 100, 1000} {
			b.Run(fmt.Sprintf("%s/e=%g", p, e), func(b *testing.B) {
				idx, err := core.NewIndex(ds.Items, core.Options{SVD: true, Int: true, Reduction: true, E: e})
				if err != nil {
					b.Fatal(err)
				}
				r := core.NewRetriever(idx)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for qi := 0; qi < ds.Queries.Rows; qi++ {
						r.Search(ds.Queries.Row(qi), 1)
					}
				}
			})
		}
	}
}

// BenchmarkFig13 — PCATree approximate retrieval (plus RMSE@1 metric).
func BenchmarkFig13(b *testing.B) {
	for _, p := range benchProfiles {
		b.Run(p, func(b *testing.B) {
			ds := benchDataset(b, p)
			tree := pcatree.New(ds.Items, pcatree.Options{LeafSize: 64})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for qi := 0; qi < ds.Queries.Rows; qi++ {
					tree.Search(ds.Queries.Row(qi), 1)
				}
			}
			b.StopTimer()
			exact := scan.NewNaive(ds.Items)
			b.ReportMetric(pcatree.RMSEAtK(tree, exact, ds.Queries, 1), "RMSE@1")
		})
	}
}

// BenchmarkFig14To19 — the SVD/value-distribution analyses: generation,
// thin SVD, and the per-dimension statistics behind Figures 14-19.
func BenchmarkFig14To19(b *testing.B) {
	for _, p := range benchProfiles {
		b.Run(p+"/thinSVD", func(b *testing.B) {
			ds := benchDataset(b, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svd.Decompose(ds.Items, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig20 — dimensionality sweep, SS-L vs F-SIR.
func BenchmarkFig20(b *testing.B) {
	p, err := data.ProfileByName("movielens")
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range []int{10, 50, 100} {
		ds := data.Generate(p, 8000, benchQueries, d)
		for _, m := range []string{"SS-L", "F-SIR"} {
			b.Run(fmt.Sprintf("d=%d/%s", d, m), func(b *testing.B) {
				built, err := experiments.Build(m, ds.Items, ds.Queries)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for qi := 0; qi < ds.Queries.Rows; qi++ {
						built.Searcher.Search(ds.Queries.Row(qi), 1)
					}
				}
			})
		}
	}
}

// BenchmarkSearchContextOverhead measures the cost of the cooperative
// cancellation machinery on the UNCANCELLED hot path, in the worst case
// for relative overhead: d = 1, where per-item work is a single multiply
// and the poll branches are maximally visible.
//
//	nopoll      — hand-rolled scan loop with no cancellation support,
//	              the pre-context baseline
//	background  — Naive.SearchContext(context.Background()): ctx.Done()
//	              is nil, so the poll branch is two nil-checks per item
//	armed       — a cancellable context: a select on ctx.Done() every
//	              search.CheckStride items
//
// The acceptance bar (DESIGN.md, Robustness) is background within 1% of
// nopoll; armed adds one channel select per 1024 items on top.
func BenchmarkSearchContextOverhead(b *testing.B) {
	const n, d = 100_000, 1
	rng := rand.New(rand.NewSource(99))
	items := vec.NewMatrix(n, d)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	q := []float64{rng.NormFloat64()}
	const k = 10

	b.Run("nopoll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := topk.New(k)
			for id := 0; id < items.Rows; id++ {
				c.Push(id, vec.Dot(q, items.Row(id)))
			}
			c.Results()
		}
	})
	b.Run("background", func(b *testing.B) {
		s := scan.NewNaive(items)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.SearchContext(ctx, q, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("armed", func(b *testing.B) {
		s := scan.NewNaive(items)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.SearchContext(ctx, q, k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpanOverhead measures per-query span tracing (DESIGN.md §13)
// at the same adversarial point as BenchmarkSearchContextOverhead:
// d = 1, n = 100k, where any per-query fixed cost is most visible
// relative to the scan.
//
//	disabled — SearchContext with no span in ctx: the production
//	           default. The only added work versus the cancellation
//	           baseline is one ctx.Value lookup per query returning nil,
//	           after which every span call is a nil-receiver no-op. The
//	           acceptance bar is within 1% of the background variant of
//	           BenchmarkSearchContextOverhead.
//	enabled  — a root span in ctx, as fexserve -trace runs: Prepare and
//	           the scan get timed children. The absolute cost is a few
//	           span allocations per QUERY (never per item — enforced by
//	           the hotalloc analyzer), invisible at realistic d.
func BenchmarkSpanOverhead(b *testing.B) {
	const n, d = 100_000, 1
	rng := rand.New(rand.NewSource(99))
	items := vec.NewMatrix(n, d)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	q := []float64{rng.NormFloat64()}
	const k = 10

	b.Run("disabled", func(b *testing.B) {
		s := scan.NewNaive(items)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.SearchContext(ctx, q, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		s := scan.NewNaive(items)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			root := obs.NewRoot("search")
			ctx := obs.ContextWithSpan(context.Background(), root)
			if _, err := s.SearchContext(ctx, q, k); err != nil {
				b.Fatal(err)
			}
			root.End()
		}
	})
	b.Run("enabled-sharded", func(b *testing.B) {
		kern := scan.NewNaiveKernel(scan.NewNaive(items), 4)
		eng := engine.New(kern, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			root := obs.NewRoot("search")
			ctx := obs.ContextWithSpan(context.Background(), root)
			if _, err := eng.SearchContext(ctx, q, k); err != nil {
				b.Fatal(err)
			}
			root.End()
		}
	})
}

// BenchmarkPreprocess times Algorithm 3 itself (the bracketed column of
// Tables 4/8).
func BenchmarkPreprocess(b *testing.B) {
	for _, p := range benchProfiles {
		for _, m := range []string{"SS-L", "F-S", "F-SIR"} {
			b.Run(p+"/"+m, func(b *testing.B) {
				ds := benchDataset(b, p)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := experiments.Build(m, ds.Items, ds.Queries); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
