// Command fexgen materializes workloads for fexquery and external tools:
// either synthetic factor matrices from a calibrated dataset profile, or
// factors learned by matrix factorization from synthetic ratings.
//
// Usage:
//
//	fexgen -profile movielens -items 10000 -queries 100 -out ./data
//	fexgen -train -users 2000 -trainitems 1500 -dim 32 -out ./data
//
// Output files (binary FXP1 format, loadable with fexipro.LoadMatrix):
//
//	<out>/items.fxp    item factor matrix (n×d)
//	<out>/queries.fxp  query/user vectors (m×d)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fexipro"
)

func main() {
	var (
		profile    = flag.String("profile", "movielens", "dataset profile: movielens|yelp|netflix|yahoo")
		items      = flag.Int("items", 0, "number of items (0 = profile default)")
		queries    = flag.Int("queries", 0, "number of queries (0 = profile default)")
		dim        = flag.Int("dim", 0, "dimensionality d (0 = profile default)")
		out        = flag.String("out", ".", "output directory")
		train      = flag.Bool("train", false, "learn factors by MF from synthetic ratings instead of sampling a profile")
		users      = flag.Int("users", 1000, "(with -train) number of users")
		trainItems = flag.Int("trainitems", 800, "(with -train) number of items")
		perUser    = flag.Int("peruser", 30, "(with -train) average ratings per user")
		algo       = flag.String("algo", "ccd", "(with -train) MF algorithm: ccd|sgd")
		seed       = flag.Int64("seed", 1, "(with -train) rating generation seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	var itemsM, queriesM *fexipro.Matrix
	if *train {
		d := *dim
		if d <= 0 {
			d = 32
		}
		ratings := fexipro.GenerateRatings(*users, *trainItems, d, *perUser, *seed)
		fmt.Printf("training %s MF on %d ratings (%d users × %d items, d=%d)\n",
			*algo, len(ratings), *users, *trainItems, d)
		rec, err := fexipro.Train(ratings, *users, *trainItems,
			fexipro.TrainConfig{Dim: d, Algorithm: *algo, Seed: *seed}, fexipro.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("training RMSE: %.4f\n", rec.RMSE(ratings))
		itemsM = rec.ItemFactors()
		queriesM = rec.UserFactors()
	} else {
		ds, err := fexipro.GenerateDataset(*profile, *items, *queries, *dim)
		if err != nil {
			fatal(err)
		}
		itemsM, queriesM = ds.Items, ds.Queries
	}

	itemsPath := filepath.Join(*out, "items.fxp")
	queriesPath := filepath.Join(*out, "queries.fxp")
	if err := fexipro.SaveMatrix(itemsPath, itemsM); err != nil {
		fatal(err)
	}
	if err := fexipro.SaveMatrix(queriesPath, queriesM); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d×%d) and %s (%d×%d)\n",
		itemsPath, itemsM.Rows(), itemsM.Cols(),
		queriesPath, queriesM.Rows(), queriesM.Cols())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fexgen: %v\n", err)
	os.Exit(1)
}
