// Command fexserve exposes a FEXIPRO index over HTTP.
//
// Usage:
//
//	fexserve -items data/items.fxp -addr :8080
//	fexserve -dim 50 -addr :8080          # start with an empty catalog
//	fexserve -dim 50 -log-format json -pprof
//	fexserve -items data/items.fxp -shards 8 -search-workers 4
//	fexserve -dim 50 -data-dir /var/lib/fexipro -checkpoint-every 1000
//
// API (JSON):
//
//	POST   /v1/search   {"vector": [...], "k": 10}
//	POST   /v1/above    {"vector": [...], "threshold": 3.5}
//	POST   /v1/items    {"vector": [...]}            → 201 {"id": n}
//	DELETE /v1/items/{id}
//	GET    /v1/info     → {"items": n, "dim": d, "shards": s}
//	GET    /healthz     liveness (also at /v1/healthz)
//	GET    /readyz      readiness: 200 once the index is built, 503
//	                    while draining for shutdown
//	GET    /metrics     Prometheus text format (per-stage pruning
//	                    counters, latency histograms, windowed latency
//	                    quantiles, SLO burn counters, build/mutation
//	                    and guard metrics)
//	GET    /debug/queries  slow-query log: span trees of recent traced
//	                    queries (only meaningful with -trace)
//	GET    /debug/pprof/  (only with -pprof)
//
// Tracing: -trace attaches a span tree to every /v1/ request —
// transform, per-shard scans (queue wait, steal provenance, stage
// counters), merge, and any mutation-triggered shard rebuild — logged
// as a per-stage summary and retained in a fixed-size ring served at
// GET /debug/queries. -slow-query-ms keeps only queries at least that
// slow; -trace-ring sizes the ring. -slo sets the latency objectives
// whose violations fexserve_slo_violations_total counts, and the
// fexipro_search_latency_window_seconds gauges expose p50/p95/p99/p999
// over the trailing ~1 minute (DESIGN.md §13).
//
// Serving guards: -timeout sets the default per-request deadline
// (clients override with the X-Timeout-Ms header, clamped to
// -max-timeout); an expired deadline answers 504 {"code":"deadline"},
// or — with -partial — 200 with the best-so-far results and
// "exact": false. -max-concurrent sheds excess load with 429 and
// Retry-After. -max-k caps the per-request k to bound response sizes.
// Panics are recovered into 500s carrying the trace ID.
//
// Sharding: -shards N splits the catalog into N independent shards
// (stable mapping id mod N), so a single add or delete only rebuilds
// the owning shard, and each query fans out across the shards through
// a pool of -search-workers goroutines before merging into the exact
// global top-k (DESIGN.md §11). Per-shard scan wall time is exported
// as fexipro_shard_scan_seconds, labeled by shard index.
//
// Persistence: -data-dir enables the fexsnap/v1 snapshot + WAL pipeline
// (DESIGN.md §15). Boot loads <dir>/current.snap and replays
// <dir>/dyn.wal — fexipro_snapshot_load_seconds on /metrics shows the
// load replacing the O(n·d²) build — and every acknowledged mutation is
// appended to the WAL before the HTTP response is sent.
// -checkpoint-every N snapshots and truncates the WAL every N
// mutations; SIGTERM always checkpoints after draining, so a restart
// replays nothing and loses nothing. -wal-sync-every batches fsyncs.
// SIGHUP reloads the -items factor file with zero read downtime: the
// replacement index builds in the background and swaps atomically
// (mutations are answered 503 "reloading" during the build).
//
// Every request is logged as one structured line (text or JSON via
// -log-format) with a trace ID, latency, and search stage counters.
// SIGINT/SIGTERM flip /readyz to 503, drain in-flight requests, and log
// a final cumulative metrics snapshot before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"fexipro/internal/core"
	"fexipro/internal/data"
	"fexipro/internal/obs"
	"fexipro/internal/server"
	"fexipro/internal/vec"
)

// shutdownTimeout bounds the in-flight request drain on SIGINT/SIGTERM.
const shutdownTimeout = 10 * time.Second

func main() {
	var (
		itemsPath   = flag.String("items", "", "FXP1 item factor file (optional if -dim given)")
		dim         = flag.Int("dim", 0, "dimension for an empty starting catalog")
		addr        = flag.String("addr", ":8080", "listen address")
		variant     = flag.String("variant", "F-SIR", "FEXIPRO variant")
		methodMode  = flag.String("method", "fexipro", "search strategy: fexipro (always the index) or auto (cost-based planner routing each query to the index or a live-catalog scan, DESIGN.md §16)")
		logFormat   = flag.String("log-format", "text", "structured log format: text|json")
		enablePprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		shards        = flag.Int("shards", 1, "catalog shards: >1 rebuilds only the owning shard per mutation and answers each query in parallel across shards (DESIGN.md §11)")
		searchWorkers = flag.Int("search-workers", 0, "per-query goroutine pool when -shards > 1 (0 = GOMAXPROCS, clamped to -shards)")

		timeout       = flag.Duration("timeout", 5*time.Second, "default per-request deadline for /v1/ routes (0 disables)")
		maxTimeout    = flag.Duration("max-timeout", 30*time.Second, "cap on the effective per-request deadline, including X-Timeout-Ms overrides (0 = uncapped)")
		maxConcurrent = flag.Int("max-concurrent", 64, "in-flight /v1/ request limit; excess is shed with 429 (0 disables)")
		partial       = flag.Bool("partial", false, "answer deadline expiry with 200 + best-so-far results flagged exact:false instead of 504")
		maxK          = flag.Int("max-k", 0, "cap on per-request k to bound response sizes (0 = server default, 1000)")

		dataDir         = flag.String("data-dir", "", "persistence directory (DESIGN.md §15): boot loads current.snap + dyn.wal instead of rebuilding, every acknowledged mutation is write-ahead logged, SIGTERM checkpoints before exit")
		checkpointEvery = flag.Int("checkpoint-every", 0, "with -data-dir, write a fresh snapshot and truncate the WAL after this many acknowledged mutations (0 = only on shutdown/reload)")
		walSyncEvery    = flag.Int("wal-sync-every", 1, "with -data-dir, fsync the WAL every Nth append; >1 trades a bounded crash-loss window for mutation throughput")

		trace       = flag.Bool("trace", false, "collect a per-query span tree (transform, per-shard scans, merge, rebuilds) for every /v1/ request, served at GET /debug/queries (DESIGN.md §13)")
		slowQueryMs = flag.Float64("slow-query-ms", 0, "with -trace, only queries at least this slow enter the /debug/queries ring (0 records every traced query)")
		traceRing   = flag.Int("trace-ring", 0, "capacity of the /debug/queries slow-query ring (0 = server default, 128)")
		sloSpec     = flag.String("slo", "", "comma-separated latency objectives burned into fexserve_slo_violations_total, e.g. 5ms,25ms,100ms (empty = server defaults 10ms,50ms,250ms)")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fexserve: %v\n", err)
		os.Exit(2)
	}

	var items *vec.Matrix
	switch {
	case *itemsPath != "":
		m, err := data.LoadMatrix(*itemsPath)
		if err != nil {
			fatal(logger, "load items", err)
		}
		items = m
	case *dim > 0:
		items = vec.NewMatrix(0, *dim)
	default:
		fatal(logger, "usage", errors.New("provide -items FILE or -dim N"))
	}

	opts, err := core.OptionsForVariant(*variant)
	if err != nil {
		fatal(logger, "variant", err)
	}

	slos, err := parseSLOs(*sloSpec)
	if err != nil {
		fatal(logger, "slo", err)
	}

	reg := obs.NewRegistry()
	buildStart := time.Now()
	srv, err := server.NewWithConfig(items, opts, server.Config{
		Metrics:           reg,
		Logger:            logger,
		EnablePprof:       *enablePprof,
		RequestTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		MaxConcurrent:     *maxConcurrent,
		PartialOnDeadline: *partial,
		MaxK:              *maxK,
		Method:            *methodMode,
		Shards:            *shards,
		SearchWorkers:     *searchWorkers,
		DataDir:           *dataDir,
		CheckpointEvery:   *checkpointEvery,
		WALSyncEvery:      *walSyncEvery,
		Trace:             *trace,
		SlowQuery:         time.Duration(*slowQueryMs * float64(time.Millisecond)),
		TraceRingSize:     *traceRing,
		SLOs:              slos,
	})
	if err != nil {
		fatal(logger, "index build", err)
	}
	buildDur := time.Since(buildStart)
	reg.Gauge("fexserve_index_build_seconds",
		"Wall time of the initial index build (preprocessing, Algorithm 3).").Set(buildDur.Seconds())
	reg.Gauge("fexserve_index_dim", "Latent dimensionality d of the index.").Set(float64(items.Cols))
	reg.Gauge("fexserve_start_time_seconds",
		"Unix time the process finished startup.").Set(float64(time.Now().Unix()))

	logger.Info("startup",
		"items", items.Rows, "dim", items.Cols, "variant", opts.Variant(), "method", *methodMode,
		"buildMillis", buildDur.Milliseconds(), "addr", *addr,
		"shards", *shards, "searchWorkers", *searchWorkers,
		"pprof", *enablePprof,
		"timeout", timeout.String(), "maxTimeout", maxTimeout.String(),
		"maxConcurrent", *maxConcurrent, "partialOnDeadline", *partial,
		"trace", *trace, "slowQueryMs", *slowQueryMs)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Listen before starting the signal loop so the bound address — which
	// differs from -addr when the port is 0 — is in the log for clients
	// (the restart e2e test starts on :0 and scrapes this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, "listen", err)
	}
	logger.Info("listening", "addr", ln.Addr().String())

	// Signal loop: SIGHUP reloads the item catalog from -items with zero
	// read downtime (the replacement index builds in the background and
	// swaps atomically); SIGINT/SIGTERM flip /readyz to 503, drain
	// in-flight requests, then checkpoint and close the WAL so no
	// acknowledged mutation outlives the process un-persisted.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
		for got := range sig {
			if got == syscall.SIGHUP {
				if *itemsPath == "" {
					logger.Warn("reload requested but no -items file to reload from")
					continue
				}
				go func() {
					m, err := data.LoadMatrix(*itemsPath)
					if err != nil {
						logger.Error("reload load failed", "err", err)
						return
					}
					start := time.Now()
					if err := srv.Reload(m, opts); err != nil {
						logger.Error("reload failed", "err", err)
						return
					}
					logger.Info("reload complete", "items", m.Rows,
						"buildMillis", time.Since(start).Milliseconds())
				}()
				continue
			}
			logger.Info("shutdown", "signal", got.String(), "drainTimeout", shutdownTimeout.String())
			srv.SetReady(false) // /readyz → 503 so load balancers stop routing here
			ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
			if err := httpSrv.Shutdown(ctx); err != nil {
				logger.Error("shutdown drain failed", "err", err)
			}
			cancel()
			if *dataDir != "" {
				if err := srv.Checkpoint(); err != nil {
					logger.Error("shutdown checkpoint failed", "err", err)
				}
				if err := srv.ClosePersistence(); err != nil {
					logger.Error("wal close failed", "err", err)
				}
			}
			break
		}
		close(idle)
	}()

	err = httpSrv.Serve(ln)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(logger, "serve", err)
	}
	<-idle
	logFinalSnapshot(logger, reg)
}

// parseSLOs parses a comma-separated list of Go durations into latency
// objectives. Empty input returns nil (server defaults).
func parseSLOs(spec string) ([]time.Duration, error) {
	if spec == "" {
		return nil, nil
	}
	var out []time.Duration
	for _, part := range strings.Split(spec, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -slo entry %q: %w", part, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("bad -slo entry %q: objectives must be positive", part)
		}
		out = append(out, d)
	}
	return out, nil
}

// newLogger builds the process logger in the requested format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

// logFinalSnapshot emits the cumulative metric state as the last lines
// of the process, so a terminated deployment still leaves its totals in
// the log stream.
func logFinalSnapshot(logger *slog.Logger, reg *obs.Registry) {
	snap := reg.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	attrs := make([]any, 0, 2*len(keys))
	for _, k := range keys {
		attrs = append(attrs, k, snap[k])
	}
	logger.Info("final metrics snapshot", attrs...)
}

func fatal(logger *slog.Logger, stage string, err error) {
	logger.Error("fatal", "stage", stage, "err", err)
	os.Exit(1)
}
