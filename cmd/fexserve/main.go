// Command fexserve exposes a FEXIPRO index over HTTP.
//
// Usage:
//
//	fexserve -items data/items.fxp -addr :8080
//	fexserve -dim 50 -addr :8080          # start with an empty catalog
//
// API (JSON):
//
//	POST   /v1/search   {"vector": [...], "k": 10}
//	POST   /v1/above    {"vector": [...], "threshold": 3.5}
//	POST   /v1/items    {"vector": [...]}            → 201 {"id": n}
//	DELETE /v1/items/{id}
//	GET    /v1/info     → {"items": n, "dim": d}
//	GET    /v1/healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"fexipro/internal/core"
	"fexipro/internal/data"
	"fexipro/internal/server"
	"fexipro/internal/vec"
)

func main() {
	var (
		itemsPath = flag.String("items", "", "FXP1 item factor file (optional if -dim given)")
		dim       = flag.Int("dim", 0, "dimension for an empty starting catalog")
		addr      = flag.String("addr", ":8080", "listen address")
		variant   = flag.String("variant", "F-SIR", "FEXIPRO variant")
	)
	flag.Parse()

	var items *vec.Matrix
	switch {
	case *itemsPath != "":
		m, err := data.LoadMatrix(*itemsPath)
		if err != nil {
			log.Fatalf("fexserve: %v", err)
		}
		items = m
	case *dim > 0:
		items = vec.NewMatrix(0, *dim)
	default:
		log.Fatal("fexserve: provide -items FILE or -dim N")
	}

	opts, err := core.OptionsForVariant(*variant)
	if err != nil {
		log.Fatalf("fexserve: %v", err)
	}
	start := time.Now()
	srv, err := server.New(items, opts)
	if err != nil {
		log.Fatalf("fexserve: %v", err)
	}
	fmt.Printf("fexserve: indexed %d items (d=%d, %s) in %v; listening on %s\n",
		items.Rows, items.Cols, *variant, time.Since(start).Round(time.Millisecond), *addr)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}
