// Command fexcalibrate is a development tool: it sweeps the synthetic
// dataset generator's parameters (norm skew, spectral decay) and reports
// the pruning-power profile of each combination, so the dataset profiles
// in internal/data can be tuned to reproduce the SHAPE of the paper's
// Tables 3/4 (who wins, by roughly what factor).
package main

import (
	"flag"
	"fmt"

	"fexipro/internal/data"
	"fexipro/internal/experiments"
)

func main() {
	var (
		items   = flag.Int("items", 20000, "item count")
		queries = flag.Int("queries", 50, "query count")
		base    = flag.String("profile", "movielens", "base profile")
	)
	flag.Parse()

	prof, err := data.ProfileByName(*base)
	if err != nil {
		fmt.Println(err)
		return
	}

	fmt.Println("sigma  decay  |   SS-L     F-S    F-SI   F-SIR  | t(naive) t(SS-L) t(F-S) t(F-SIR) ms")
	for _, sigma := range []float64{0.15, 0.25, 0.35, 0.5} {
		for _, decay := range []float64{0.02, 0.05, 0.08, 0.12} {
			p := prof
			p.NormSigma = sigma
			p.SpectralDecay = decay
			ds := data.Generate(p, *items, *queries, 0)
			counts := map[string]float64{}
			times := map[string]float64{}
			for _, m := range []string{"Naive", "SS-L", "F-S", "F-SI", "F-SIR"} {
				res, err := experiments.RunMethod(m, ds, 1, false)
				if err != nil {
					fmt.Println(err)
					return
				}
				counts[m] = res.AvgFullIP
				times[m] = float64(res.Retrieve.Milliseconds())
			}
			fmt.Printf("%.2f   %.2f   | %7.1f %7.1f %7.1f %7.1f | %7.0f %7.0f %7.0f %7.0f\n",
				sigma, decay, counts["SS-L"], counts["F-S"], counts["F-SI"], counts["F-SIR"],
				times["Naive"], times["SS-L"], times["F-S"], times["F-SIR"])
		}
	}
}
