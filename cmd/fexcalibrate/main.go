// Command fexcalibrate is a development tool with two jobs:
//
// Sweep mode (default): sweep the synthetic dataset generator's
// parameters (norm skew, spectral decay) and report the pruning-power
// profile of each combination, so the dataset profiles in internal/data
// can be tuned to reproduce the SHAPE of the paper's Tables 3/4 (who
// wins, by roughly what factor).
//
// Fit mode (-fit): measure each method across a grid of catalog sizes
// and dimensions, fit the query planner's per-method cost coefficients
// (internal/plan) by least squares, and write them as a versioned
// fexplan/v1 file. Point fexserve's -data-dir at the directory holding
// it (as plan.snap) and `-method auto` boots with an offline-calibrated
// cost model instead of warming up online.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fexipro/internal/data"
	"fexipro/internal/experiments"
	"fexipro/internal/method"
	"fexipro/internal/plan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fexcalibrate: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		items   = flag.Int("items", 20000, "item count")
		queries = flag.Int("queries", 50, "query count")
		base    = flag.String("profile", "movielens", "base profile")
		k       = flag.Int("k", 1, "results per query")
		seed    = flag.Int64("seed", 0, "dataset RNG seed (0 = profile default)")
		methods = flag.String("methods", "", "comma-separated methods (default: Naive + every pruning method)")
		fit     = flag.Bool("fit", false, "fit planner cost coefficients instead of sweeping profiles")
		out     = flag.String("out", plan.CalibrationFile, "fexplan/v1 output path for -fit")
	)
	flag.Parse()

	prof, err := data.ProfileByName(*base)
	if err != nil {
		return err
	}
	if *seed != 0 {
		prof.Seed = *seed
	}
	names, err := methodList(*methods)
	if err != nil {
		return err
	}
	if *fit {
		return fitCosts(prof, names, *items, *queries, *k, *out)
	}
	return sweep(prof, names, *items, *queries, *k)
}

// methodList resolves the -methods flag against the registry; the
// default pool is Naive (the floor every pruning method is measured
// against) plus the registry's pruning-capable methods.
func methodList(csv string) ([]string, error) {
	if csv == "" {
		return append([]string{"Naive"}, method.PruningNames()...), nil
	}
	var names []string
	for _, raw := range strings.Split(csv, ",") {
		d, err := method.Get(strings.TrimSpace(raw))
		if err != nil {
			return nil, err
		}
		names = append(names, d.Name)
	}
	return names, nil
}

// sweep prints the pruning-power and latency profile of each (norm
// sigma, spectral decay) combination for every requested method.
func sweep(prof data.Profile, names []string, items, queries, k int) error {
	var b strings.Builder
	b.WriteString("sigma  decay  |")
	for _, m := range names {
		fmt.Fprintf(&b, " %9s", "n("+m+")")
	}
	b.WriteString(" |")
	for _, m := range names {
		fmt.Fprintf(&b, " %9s", "t("+m+")")
	}
	fmt.Println(b.String() + " ms")
	for _, sigma := range []float64{0.15, 0.25, 0.35, 0.5} {
		for _, decay := range []float64{0.02, 0.05, 0.08, 0.12} {
			p := prof
			p.NormSigma = sigma
			p.SpectralDecay = decay
			ds := data.Generate(p, items, queries, 0)
			var row strings.Builder
			fmt.Fprintf(&row, "%.2f   %.2f   |", sigma, decay)
			var times []float64
			for _, m := range names {
				res, err := experiments.RunMethod(m, ds, k, false)
				if err != nil {
					return err
				}
				fmt.Fprintf(&row, " %9.1f", res.AvgFullIP)
				times = append(times, float64(res.Retrieve.Milliseconds()))
			}
			row.WriteString(" |")
			for _, t := range times {
				fmt.Fprintf(&row, " %9.0f", t)
			}
			fmt.Println(row.String())
		}
	}
	return nil
}

// fitCosts measures each method over a (size × dimension) grid and
// writes the least-squares cost coefficients as a fexplan/v1 file. The
// grid varies both n and d so the fit's PerItem and PerDim columns are
// not collinear.
func fitCosts(prof data.Profile, names []string, items, queries, k int, out string) error {
	sizes := []int{items / 4, items / 2, items}
	dims := []int{0, prof.Dim / 2} // 0 = the profile's own dim
	cal := &plan.Calibration{Schema: plan.Schema, Methods: map[string]method.CostModel{}}
	for _, m := range names {
		var samples []plan.Sample
		for _, n := range sizes {
			if n < 1 {
				n = 1
			}
			for _, d := range dims {
				ds := data.Generate(prof, n, queries, d)
				res, err := experiments.RunMethod(m, ds, k, false)
				if err != nil {
					return err
				}
				prune := 0.0
				if rows := float64(ds.Items.Rows); rows > 0 {
					prune = min(max(1-res.AvgFullIP/rows, 0), 1)
				}
				samples = append(samples, plan.Sample{
					N: ds.Items.Rows, D: ds.Items.Cols, K: k,
					Shards: 1, Workers: 1,
					PruneFrac: prune,
					Seconds:   res.Retrieve.Seconds() / float64(res.QueriesCount),
				})
			}
		}
		model, err := plan.Fit(samples)
		if err != nil {
			return fmt.Errorf("fitting %s: %w", m, err)
		}
		cal.Methods[m] = model
		fmt.Printf("%-8s setup=%.3g perItem=%.3g perDim=%.3g prunePrior=%.2f (%d samples)\n",
			m, model.Setup, model.PerItem, model.PerDim, model.PrunePrior, len(samples))
	}
	if err := plan.WriteFile(out, cal); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s, %d methods)\n", out, plan.Schema, len(cal.Methods))
	return nil
}
