// Command fexquery serves top-k inner-product queries over a factor file
// produced by fexgen (or any FXP1 matrix).
//
// Usage:
//
//	fexquery -items data/items.fxp -queries data/queries.fxp -k 10
//	fexquery -items data/items.fxp -k 5 -method ssl   # baseline comparison
//	echo "0.1,0.2,..." | fexquery -items data/items.fxp -stdin
//
// For each query it prints one line: the query index followed by
// "item:score" pairs in descending score order.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fexipro"
)

func main() {
	var (
		itemsPath   = flag.String("items", "", "FXP1 item factor file (required)")
		queriesPath = flag.String("queries", "", "FXP1 query file (optional)")
		useStdin    = flag.Bool("stdin", false, "read comma-separated query vectors from stdin")
		k           = flag.Int("k", 10, "number of results per query")
		method      = flag.String("method", "fexipro",
			"fexipro, auto (cost-based planner), or any registered method: "+strings.Join(fexipro.Methods(), ", "))
		variant   = flag.String("variant", "F-SIR", "FEXIPRO variant when -method=fexipro")
		showStats = flag.Bool("stats", false, "print pruning statistics per query")
	)
	flag.Parse()

	if *itemsPath == "" {
		fmt.Fprintln(os.Stderr, "fexquery: -items is required")
		os.Exit(2)
	}
	items, err := fexipro.LoadMatrix(*itemsPath)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	var searcher fexipro.Searcher
	// "fexipro" and "auto" are dispatch modes, not registry methods: the
	// first parses -variant, the second builds the cost-based planner
	// over the registry's auto candidates. Everything else resolves
	// through the method registry (names are case-insensitive; aliases
	// like "ssl" or "scan" work).
	switch {
	case strings.EqualFold(*method, "fexipro"):
		searcher, err = fexipro.New(items, fexipro.Options{Variant: *variant})
	case strings.EqualFold(*method, "auto"):
		searcher, err = fexipro.NewPlanner(items, fexipro.PlannerOptions{})
	default:
		searcher, err = fexipro.NewMethod(*method, items, fexipro.MethodOptions{})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "indexed %d items (d=%d) with %s in %.3fs\n",
		items.Rows(), items.Cols(), *method, time.Since(start).Seconds())

	answer := func(qi int, q []float64) {
		qStart := time.Now()
		res := searcher.Search(q, *k)
		var b strings.Builder
		fmt.Fprintf(&b, "query %d:", qi)
		for _, r := range res {
			fmt.Fprintf(&b, " %d:%.6g", r.ID, r.Score)
		}
		fmt.Println(b.String())
		if *showStats {
			st := searcher.LastStats()
			fmt.Fprintf(os.Stderr, "  %.1fµs scanned=%d pruned=%d full=%d\n",
				float64(time.Since(qStart).Microseconds()), st.Scanned, st.Pruned, st.FullProducts)
			if p, ok := searcher.(*fexipro.Planner); ok {
				d := p.LastDecision()
				fmt.Fprintf(os.Stderr, "  plan: %s (%s) predicted=%.1fµs observed=%.1fµs\n",
					d.Method, d.Reason, d.PredictedSeconds*1e6, d.ObservedSeconds*1e6)
			}
		}
	}

	switch {
	case *queriesPath != "":
		queries, err := fexipro.LoadMatrix(*queriesPath)
		if err != nil {
			fatal(err)
		}
		if queries.Cols() != items.Cols() {
			fatal(fmt.Errorf("query dim %d != item dim %d", queries.Cols(), items.Cols()))
		}
		for i := 0; i < queries.Rows(); i++ {
			answer(i, queries.Row(i))
		}
	case *useStdin:
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		qi := 0
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			fields := strings.Split(line, ",")
			if len(fields) != items.Cols() {
				fatal(fmt.Errorf("query %d has %d values, want %d", qi, len(fields), items.Cols()))
			}
			q := make([]float64, len(fields))
			for j, f := range fields {
				v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil {
					fatal(fmt.Errorf("query %d field %d: %v", qi, j, err))
				}
				q[j] = v
			}
			answer(qi, q)
			qi++
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "fexquery: provide -queries FILE or -stdin")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fexquery: %v\n", err)
	os.Exit(1)
}
