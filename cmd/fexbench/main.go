// Command fexbench regenerates the paper's tables and figures over the
// calibrated synthetic datasets.
//
// Usage:
//
//	fexbench -exp table4                 # one experiment, default sizes
//	fexbench -exp all                    # the full evaluation suite
//	fexbench -exp fig8,fig9 -profiles movielens,netflix
//	fexbench -exp table4 -items 5000 -queries 50   # quick smoke run
//	fexbench -statsjson -profiles netflix -k 10    # per-stage counters as JSON
//	fexbench -statsjson -shards 8 -workers 4       # sharded execution engine
//
// -statsjson dumps the cumulative per-pruning-stage counters in the
// same schema fexserve exposes at /metrics and in its /v1/search
// responses, so offline benchmark numbers and online telemetry are
// directly comparable. With -shards > 1 each method's index is
// partitioned and every query is answered in parallel through the
// sharded execution engine (DESIGN.md §11) — results and counters stay
// exact, and the dump records the shard/worker configuration.
//
// Default sizes follow Table 2 of the paper (Yahoo scaled to 100k items)
// with 200 sampled queries per dataset; expect minutes per experiment at
// full size on one core.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fexipro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (table3..table8, fig6..fig20), comma-separated, or 'all'")
		profiles = flag.String("profiles", "", "comma-separated dataset profiles (default: all four)")
		items    = flag.Int("items", 0, "override item count per dataset (0 = profile default)")
		queries  = flag.Int("queries", 0, "override query count (0 = profile default of 200)")
		dim      = flag.Int("dim", 0, "override dimensionality d (0 = profile default of 50)")
		list     = flag.Bool("list", false, "list available experiments and exit")
		statsOut = flag.Bool("statsjson", false, "dump per-stage pruning counters as JSON (same schema as fexserve telemetry)")
		methods  = flag.String("methods", "", "comma-separated methods for -statsjson, including \"auto\" for the query planner (default: all of Table 4)")
		k        = flag.Int("k", 1, "top-k for -statsjson")
		shards   = flag.Int("shards", 0, "partition each method's index into this many shards answered in parallel per query; results stay exact (0/1 = sequential scan)")
		workers  = flag.Int("workers", 0, "per-query goroutine pool for -shards > 1 (0 = GOMAXPROCS, clamped to -shards)")
	)
	flag.Parse()

	if *statsOut {
		cfg := experiments.Config{Items: *items, Queries: *queries, Dim: *dim,
			Shards: *shards, SearchWorkers: *workers}
		if *profiles != "" {
			cfg.Profiles = strings.Split(*profiles, ",")
		}
		var ms []string
		if *methods != "" {
			for _, m := range strings.Split(*methods, ",") {
				ms = append(ms, strings.TrimSpace(m))
			}
		}
		out, err := experiments.StatsJSON(cfg, ms, *k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fexbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		reg := experiments.Registry()
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-8s %s\n", id, reg[id].Description)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nerror: -exp is required (or -list)")
			os.Exit(2)
		}
		return
	}

	cfg := experiments.Config{Items: *items, Queries: *queries, Dim: *dim}
	if *profiles != "" {
		cfg.Profiles = strings.Split(*profiles, ",")
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		out, err := experiments.RunByID(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fexbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}
