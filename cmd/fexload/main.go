// Command fexload is an open-loop traffic generator for fexserve.
//
// Usage:
//
//	fexload -target http://localhost:8080 -dim 50 -rate 500 -duration 30s
//	fexload -items 5000 -dim 16 -rate 300 -duration 10s -slojson run.json
//	fexload -target http://host:8080 -dim 50 -mutate-every 20 \
//	        -burst-every 10s -burst-dur 2s -burst-factor 4
//
// With -target, fexload drives an already-running server. Without it,
// fexload starts an in-process fexserve over a synthetic normal
// catalog (-items × -dim, seeded by -seed) on a loopback port and
// drives that — a self-contained smoke mode for CI.
//
// The workload is open-loop: arrivals are scheduled purely from -rate
// (times -burst-factor during burst phases), never from completions,
// so server slowness shows up as client-side latency and shed arrivals
// rather than silently reducing the offered load. Queries draw a user
// ID from a zipfian distribution over -users synthetic users; each
// user's query vector is derived deterministically from -seed, so runs
// replay query-for-query. -mutate-every N turns every Nth arrival into
// a catalog mutation (alternating adds and deletes of its own items).
//
// -slojson writes the run report in the fexload/v1 schema ("-" for
// stdout): sent/completed/shed counts, status classes, exact latency
// quantiles in milliseconds, and per-objective SLO burn — field-style
// compatible with the fexbench -statsjson dumps (BENCH_seed.json), so
// the same tooling can diff offline benchmark and load-test runs.
// When the target runs `-method auto`, the report also carries a
// "plan" block (the server's /v1/plan summary) attributing the run's
// queries to the methods the cost-based planner chose.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"fexipro/internal/core"
	"fexipro/internal/load"
	"fexipro/internal/server"
	"fexipro/internal/vec"
)

func main() {
	var (
		target   = flag.String("target", "", "base URL of a running fexserve (empty = start an in-process synthetic server)")
		items    = flag.Int("items", 2000, "synthetic catalog size for the in-process server (ignored with -target)")
		dim      = flag.Int("dim", 16, "query dimensionality; must match the target index")
		variant  = flag.String("variant", "F-SIR", "FEXIPRO variant for the in-process server (ignored with -target)")
		shards   = flag.Int("shards", 1, "catalog shards for the in-process server (ignored with -target)")
		rate     = flag.Float64("rate", 100, "offered arrivals per second (open loop)")
		duration = flag.Duration("duration", 5*time.Second, "how long to generate arrivals")
		users    = flag.Int("users", 1_000_000, "synthetic user population; query popularity over it is zipfian")
		zipfS    = flag.Float64("zipf-s", 1.2, "zipf skew exponent (> 1; larger = hotter head)")
		k        = flag.Int("k", 10, "top-k per search")

		mutateEvery = flag.Int("mutate-every", 0, "every Nth arrival is a catalog mutation, alternating add/delete (0 = search-only)")
		burstEvery  = flag.Duration("burst-every", 0, "burst phase period (0 = steady rate)")
		burstDur    = flag.Duration("burst-dur", 0, "burst phase length within each period (default period/5)")
		burstFactor = flag.Float64("burst-factor", 4, "rate multiplier during burst phases")

		maxInFlight = flag.Int("max-inflight", 1024, "client-side cap on outstanding requests; arrivals beyond it are counted shed, not retried")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-request client timeout")
		sloSpec     = flag.String("slo", "", "comma-separated client-side latency objectives, e.g. 5ms,25ms,100ms (empty = 10ms,50ms,250ms)")
		seed        = flag.Int64("seed", 1, "run seed: arrival mix, zipf draws, and query vectors all derive from it")
		slojson     = flag.String("slojson", "", "write the fexload/v1 report to this path (\"-\" = stdout)")
	)
	flag.Parse()

	slos, err := parseSLOs(*sloSpec)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	base := *target
	shutdown := func() {}
	if base == "" {
		base, shutdown, err = startInProcess(*items, *dim, *variant, *shards, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fexload: in-process fexserve at %s (%d items, dim %d, %s, %d shard(s))\n",
			base, *items, *dim, *variant, *shards)
	}

	rep, err := load.Run(ctx, load.Config{
		Target:      strings.TrimRight(base, "/"),
		Dim:         *dim,
		Rate:        *rate,
		Duration:    *duration,
		Users:       *users,
		ZipfS:       *zipfS,
		K:           *k,
		MutateEvery: *mutateEvery,
		BurstEvery:  *burstEvery,
		BurstDur:    *burstDur,
		BurstFactor: *burstFactor,
		MaxInFlight: *maxInFlight,
		Timeout:     *timeout,
		SLOs:        slos,
		Seed:        *seed,
	})
	// The run is over: join the in-process server before any reporting,
	// so the -slojson file is written only once every goroutine this
	// process started has finished (load.Run joins its own senders).
	shutdown()
	if err != nil {
		fatal(err)
	}
	if err := rep.Validate(); err != nil {
		fatal(fmt.Errorf("internal: report failed validation: %w", err))
	}

	fmt.Fprintf(os.Stderr,
		"fexload: sent %d (shed %d) completed %d in %.1fs — %.1f qps, p50 %.2fms p99 %.2fms max %.2fms\n",
		rep.Sent, rep.Shed, rep.Completed, rep.ElapsedMs/1e3, rep.AchievedQPS,
		rep.LatencyMs.P50, rep.LatencyMs.P99, rep.LatencyMs.Max)
	for _, s := range rep.SLOs {
		fmt.Fprintf(os.Stderr, "fexload: SLO %s: %d violations (burn %.4f)\n", s.Objective, s.Violations, s.BurnRate)
	}

	if *slojson != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		raw = append(raw, '\n')
		if *slojson == "-" {
			_, err = os.Stdout.Write(raw)
		} else {
			err = os.WriteFile(*slojson, raw, 0o644)
		}
		if err != nil {
			fatal(err)
		}
	}
}

// startInProcess builds a synthetic catalog, serves it on a loopback
// port, and returns the base URL plus a shutdown func.
func startInProcess(items, dim int, variant string, shards int, seed int64) (string, func(), error) {
	if dim <= 0 {
		return "", nil, errors.New("in-process mode needs -dim > 0")
	}
	opts, err := core.OptionsForVariant(variant)
	if err != nil {
		return "", nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(items, dim)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	srv, err := server.NewWithConfig(m, opts, server.Config{Shards: shards})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = hs.Serve(ln)
	}()
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = hs.Shutdown(ctx)
			// Join the Serve goroutine: Shutdown returning only means
			// listeners are closed and conns drained; Serve's return is
			// the goroutine's actual exit edge.
			<-served
		})
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

func parseSLOs(spec string) ([]time.Duration, error) {
	if spec == "" {
		return nil, nil
	}
	var out []time.Duration
	for _, part := range strings.Split(spec, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -slo entry %q: %w", part, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("bad -slo entry %q: objectives must be positive", part)
		}
		out = append(out, d)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fexload: %v\n", err)
	os.Exit(1)
}
