// Command fexlint runs the project-specific static analyzers of
// internal/lint over the repository. It is stdlib-only (go/ast +
// go/types with a `go list`-free loader) and is wired into `make lint`,
// `make check`, `make precommit`, and CI.
//
// Usage:
//
//	fexlint [-json] [-fix] [-analyzers a,b,...] [-baseline FILE]
//	        [-write-baseline] [patterns...]
//
// Patterns default to ./... relative to the enclosing module.
//
// Exit status (a contract scripts may rely on):
//
//	0  clean — no diagnostics after baseline suppression (and after
//	   fixes, when -fix was given)
//	1  diagnostics reported
//	2  load or usage error (bad flags, unparseable source, type errors)
//
// -fix applies every machine-applicable suggested fix in place and then
// reports only the findings that remain; fix application is idempotent
// (a second -fix pass rewrites nothing).
//
// -baseline names a grandfathered-findings file (default
// .fexlint-baseline.json at the module root; a missing file is an empty
// baseline). Matching findings are suppressed and counted instead of
// reported, so legacy debt is visible without failing the build, while
// anything new still exits 1. -write-baseline records the current
// findings to that file and exits 0 — the adoption entry point.
//
// -json emits one object:
//
//	{
//	  "diagnostics": [
//	    {
//	      "analyzer": "kernelcontract",
//	      "file": "internal/core/retrieve.go",   // cwd-relative
//	      "line": 150, "col": 24,
//	      "message": "...",
//	      "fixes": [                             // omitted when empty
//	        {"message": "replace <= with <",
//	         "edits": [{"file": "...", "offset": 123, "end": 125,
//	                    "new_text": "<"}]}        // byte offsets, End exclusive
//	      ]
//	    }
//	  ],
//	  "count": 1,                // diagnostics after suppression
//	  "baseline_suppressed": 0   // findings absorbed by the baseline
//	}
//
// Suppress a single finding with a trailing or preceding line comment:
//
//	//lint:ignore <analyzer> reason
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fexipro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fexlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	fix := fs.Bool("fix", false, "apply machine-applicable suggested fixes in place")
	baselinePath := fs.String("baseline", "", "baseline file of grandfathered findings (default: <module>/.fexlint-baseline.json)")
	writeBaseline := fs.Bool("write-baseline", false, "record current findings to the baseline file and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}
	root := loader.ModuleRoot()
	if *baselinePath == "" {
		*baselinePath = filepath.Join(root, ".fexlint-baseline.json")
	}

	units, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}
	loadFailed := false
	for _, u := range units {
		for _, terr := range u.TypeErrors {
			loadFailed = true
			fmt.Fprintf(os.Stderr, "fexlint: %s: type error: %v\n", u.Path, terr)
		}
	}
	if loadFailed {
		return 2
	}

	diags := lint.Run(units, analyzers)

	if *writeBaseline {
		if err := lint.WriteBaseline(*baselinePath, root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "fexlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "fexlint: wrote %d finding(s) to %s\n", len(diags), *baselinePath)
		return 0
	}

	baseline, err := lint.LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}
	diags, suppressed := baseline.Filter(root, diags)

	if *fix {
		changed, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fexlint:", err)
			return 2
		}
		for _, f := range changed {
			fmt.Fprintf(os.Stderr, "fexlint: fixed %s\n", relTo(cwd, f))
		}
		// Fixed findings are gone from the tree; report the rest.
		var remaining []lint.Diagnostic
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	}

	for i := range diags {
		diags[i].File = relTo(cwd, diags[i].File)
		for j := range diags[i].Fixes {
			for k := range diags[i].Fixes[j].Edits {
				e := &diags[i].Fixes[j].Edits[k]
				e.File = relTo(cwd, e.File)
			}
		}
	}
	if *jsonOut {
		out := struct {
			Diagnostics        []lint.Diagnostic `json:"diagnostics"`
			Count              int               `json:"count"`
			BaselineSuppressed int               `json:"baseline_suppressed"`
		}{Diagnostics: diags, Count: len(diags), BaselineSuppressed: suppressed}
		if out.Diagnostics == nil {
			out.Diagnostics = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "fexlint:", err)
			return 2
		}
	} else {
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "fexlint: %d finding(s) suppressed by %s\n", suppressed, relTo(cwd, *baselinePath))
		}
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relTo maps path under base to a relative form for display, leaving
// anything outside base untouched.
func relTo(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return path
}
