// Command fexlint runs the project-specific static analyzers of
// internal/lint over the repository. It is stdlib-only (go/ast +
// go/types with a `go list`-free loader) and is wired into `make lint`,
// `make check`, `make precommit`, and CI.
//
// Usage:
//
//	fexlint [-json] [-fix] [-analyzers a,b,...] [-baseline FILE]
//	        [-write-baseline] [-check-baseline] [-timings] [-budget D]
//	        [patterns...]
//	fexlint -perf [-perf-facts FILE] [patterns...]
//	fexlint -write-perf-facts [-perf-facts FILE] [patterns...]
//
// Patterns default to ./... relative to the enclosing module.
//
// -perf runs the compiler-fact perf gate instead of the analyzers: it
// compiles the tree with `-gcflags='-m -d=ssa/check_bce'` and enforces
// the committed .fexperf-facts.json manifest — zero heap escapes in
// //fex:hot functions, no new bounds checks (ratcheted per function),
// and //fex:inline kernels still inlinable. Unrecognized toolchain
// output or a Go version other than the manifest's SKIPS the gate with
// a printed reason and exit 0 (compiler diagnostics are not a stable
// API). -write-perf-facts regenerates the manifest from the current
// tree and exits 0. See internal/lint/perfgate and DESIGN.md §14.
//
// Exit status (a contract scripts may rely on):
//
//	0  clean — no diagnostics after baseline suppression (and after
//	   fixes, when -fix was given)
//	1  diagnostics reported
//	2  load or usage error (bad flags, unparseable source, type errors)
//
// -fix applies every machine-applicable suggested fix in place and then
// reports only the findings that remain; fix application is idempotent
// (a second -fix pass rewrites nothing).
//
// -baseline names a grandfathered-findings file (default
// .fexlint-baseline.json at the module root; a missing file is an empty
// baseline). Matching findings are suppressed and counted instead of
// reported, so legacy debt is visible without failing the build, while
// anything new still exits 1. -write-baseline records the current
// findings to that file and exits 0 — the adoption entry point; because
// the file is rebuilt from scratch, entries whose findings no longer
// fire are pruned (and the prune count reported). -check-baseline
// exits 1 when the baseline holds dead entries — findings that no
// longer fire — so `make lint` forces the file to shrink as debt is
// burned down instead of rotting.
//
// -timings prints a per-analyzer cost table to stderr (unit-phase CPU
// time and module-phase wall clock). -budget D fails the run (exit 1)
// when total analysis wall clock — load plus analyzers — exceeds the
// duration D; CI pins this so an accidentally quadratic analyzer shows
// up as a red build, not a slowly creeping lint step.
//
// -json emits one object:
//
//	{
//	  "diagnostics": [
//	    {
//	      "analyzer": "kernelcontract",
//	      "file": "internal/core/retrieve.go",   // cwd-relative
//	      "line": 150, "col": 24,
//	      "message": "...",
//	      "fixes": [                             // omitted when empty
//	        {"message": "replace <= with <",
//	         "edits": [{"file": "...", "offset": 123, "end": 125,
//	                    "new_text": "<"}]}        // byte offsets, End exclusive
//	      ]
//	    }
//	  ],
//	  "count": 1,                // diagnostics after suppression
//	  "baseline_suppressed": 0   // findings absorbed by the baseline
//	}
//
// Suppress a single finding with a trailing or preceding line comment:
//
//	//lint:ignore <analyzer> reason
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fexipro/internal/lint"
	"fexipro/internal/lint/perfgate"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fexlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	fix := fs.Bool("fix", false, "apply machine-applicable suggested fixes in place")
	baselinePath := fs.String("baseline", "", "baseline file of grandfathered findings (default: <module>/.fexlint-baseline.json)")
	writeBaseline := fs.Bool("write-baseline", false, "record current findings to the baseline file (pruning dead entries) and exit 0")
	checkBaseline := fs.Bool("check-baseline", false, "fail if the baseline contains entries no current finding matches")
	timings := fs.Bool("timings", false, "print per-analyzer wall-clock timings to stderr")
	budget := fs.Duration("budget", 0, "fail if analysis (load + run) exceeds this wall-clock ceiling")
	perf := fs.Bool("perf", false, "run the compiler-fact perf gate instead of the analyzers")
	writePerfFacts := fs.Bool("write-perf-facts", false, "regenerate the perf-facts manifest and exit 0")
	perfFactsPath := fs.String("perf-facts", "", "perf-facts manifest (default: <module>/.fexperf-facts.json)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}
	root := loader.ModuleRoot()
	if *baselinePath == "" {
		*baselinePath = filepath.Join(root, ".fexlint-baseline.json")
	}
	if *perfFactsPath == "" {
		*perfFactsPath = filepath.Join(root, ".fexperf-facts.json")
	}
	if *perf || *writePerfFacts {
		return runPerfGate(root, *perfFactsPath, *writePerfFacts, fs.Args())
	}

	analysisStart := time.Now()
	units, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}
	loadFailed := false
	for _, u := range units {
		for _, terr := range u.TypeErrors {
			loadFailed = true
			fmt.Fprintf(os.Stderr, "fexlint: %s: type error: %v\n", u.Path, terr)
		}
	}
	if loadFailed {
		return 2
	}

	diags, perAnalyzer := lint.RunTimed(units, analyzers)
	elapsed := time.Since(analysisStart)
	if *timings {
		printTimings(perAnalyzer, elapsed)
	}
	overBudget := *budget > 0 && elapsed > *budget
	if overBudget {
		fmt.Fprintf(os.Stderr, "fexlint: analysis took %v, over the %v budget — profile with -timings and trim the slow analyzer\n",
			elapsed.Round(time.Millisecond), *budget)
	}

	baseline, err := lint.LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}
	dead := baseline.Dead(root, diags)

	if *writeBaseline {
		if err := lint.WriteBaseline(*baselinePath, root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "fexlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "fexlint: wrote %d finding(s) to %s", len(diags), *baselinePath)
		if n := deadCount(dead); n > 0 {
			fmt.Fprintf(os.Stderr, " (pruned %d dead entr%s)", n, plural(n, "y", "ies"))
		}
		fmt.Fprintln(os.Stderr)
		return 0
	}

	deadFound := *checkBaseline && len(dead) > 0
	if deadFound {
		for _, e := range dead {
			fmt.Fprintf(os.Stderr, "fexlint: dead baseline entry: %s: %s: %s (count %d) — no current finding matches; rewrite with -write-baseline\n",
				e.File, e.Analyzer, e.Message, e.Count)
		}
	}

	diags, suppressed := baseline.Filter(root, diags)

	if *fix {
		changed, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fexlint:", err)
			return 2
		}
		for _, f := range changed {
			fmt.Fprintf(os.Stderr, "fexlint: fixed %s\n", relTo(cwd, f))
		}
		// Fixed findings are gone from the tree; report the rest.
		var remaining []lint.Diagnostic
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	}

	for i := range diags {
		diags[i].File = relTo(cwd, diags[i].File)
		for j := range diags[i].Fixes {
			for k := range diags[i].Fixes[j].Edits {
				e := &diags[i].Fixes[j].Edits[k]
				e.File = relTo(cwd, e.File)
			}
		}
	}
	if *jsonOut {
		out := struct {
			Diagnostics        []lint.Diagnostic `json:"diagnostics"`
			Count              int               `json:"count"`
			BaselineSuppressed int               `json:"baseline_suppressed"`
		}{Diagnostics: diags, Count: len(diags), BaselineSuppressed: suppressed}
		if out.Diagnostics == nil {
			out.Diagnostics = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "fexlint:", err)
			return 2
		}
	} else {
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "fexlint: %d finding(s) suppressed by %s\n", suppressed, relTo(cwd, *baselinePath))
		}
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 || deadFound || overBudget {
		return 1
	}
	return 0
}

// printTimings renders the -timings table: per-analyzer unit-phase CPU
// time and module-phase wall clock, plus total analysis wall clock
// (load + run), which is what -budget meters.
func printTimings(ts []lint.Timing, elapsed time.Duration) {
	fmt.Fprintf(os.Stderr, "%-14s %12s %12s\n", "analyzer", "unit(cpu)", "module")
	for _, t := range ts {
		fmt.Fprintf(os.Stderr, "%-14s %12s %12s\n", t.Analyzer,
			t.Unit.Round(time.Microsecond), t.Module.Round(time.Microsecond))
	}
	fmt.Fprintf(os.Stderr, "total wall clock (load + run): %v\n", elapsed.Round(time.Millisecond))
}

// deadCount sums the unused finding slots across dead baseline entries.
func deadCount(dead []lint.BaselineEntry) int {
	n := 0
	for _, e := range dead {
		n += e.Count
	}
	return n
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// runPerfGate is the -perf / -write-perf-facts entry point. It shares
// fexlint's exit-status contract: 0 clean or skipped-with-reason, 1
// contract violations, 2 operational errors.
func runPerfGate(root, manifestPath string, write bool, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if write {
		m, err := perfgate.Write("", root, manifestPath, patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fexlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "fexlint: wrote perf facts for %d function(s) to %s\n", len(m.Functions), manifestPath)
		return 0
	}
	res, err := perfgate.Run("", root, manifestPath, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}
	if res.SkipReason != "" {
		fmt.Fprintf(os.Stderr, "fexlint: perf gate skipped: %s\n", res.SkipReason)
		return 0
	}
	for _, p := range res.Problems {
		fmt.Println(p.String())
	}
	if len(res.Problems) > 0 {
		return 1
	}
	return 0
}

// relTo maps path under base to a relative form for display, leaving
// anything outside base untouched.
func relTo(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return path
}
