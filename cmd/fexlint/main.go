// Command fexlint runs the project-specific static analyzers of
// internal/lint over the repository. It is stdlib-only (go/ast +
// go/types with a `go list`-free loader) and is wired into `make lint`,
// `make check`, `make precommit`, and CI.
//
// Usage:
//
//	fexlint [-json] [-analyzers a,b,...] [patterns...]
//
// Patterns default to ./... relative to the enclosing module. Exit
// status: 0 clean, 1 diagnostics reported, 2 load or usage error.
//
// Suppress a finding with a trailing or preceding line comment:
//
//	//lint:ignore <analyzer> reason
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fexipro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fexlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}
	units, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fexlint:", err)
		return 2
	}
	loadFailed := false
	for _, u := range units {
		for _, terr := range u.TypeErrors {
			loadFailed = true
			fmt.Fprintf(os.Stderr, "fexlint: %s: type error: %v\n", u.Path, terr)
		}
	}
	if loadFailed {
		return 2
	}

	diags := lint.Run(units, analyzers)
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !filepath.IsAbs(rel) {
			diags[i].File = rel
		}
	}
	if *jsonOut {
		out := struct {
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
			Count       int               `json:"count"`
		}{Diagnostics: diags, Count: len(diags)}
		if out.Diagnostics == nil {
			out.Diagnostics = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "fexlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
