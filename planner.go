package fexipro

import (
	"context"

	"fexipro/internal/method"
	"fexipro/internal/plan"
	"fexipro/internal/search"
)

// PlannerOptions configures NewPlanner.
type PlannerOptions struct {
	// Methods names the candidate pool (see Methods; aliases accepted).
	// Empty selects the registry's default auto pool — an exhaustive
	// scan, a pruned sorted scan, and the full FEXIPRO index — spanning
	// the scan-vs-index tradeoff without building every method.
	Methods []string
	// SampleQueries (optional) tunes candidates that calibrate a
	// checking dimension from sample queries (SS-L, LEMP).
	SampleQueries *Matrix
	// Shards > 1 partitions every candidate's index, answered through
	// the sharded execution engine with Workers goroutines per query.
	Shards, Workers int
	// ProbeEvery re-measures a non-best candidate every ProbeEvery
	// queries (0 = default, negative = never).
	ProbeEvery int
	// AllowApprox admits approximate candidates (PCATree). Without it
	// the planner only ever picks provably exact methods.
	AllowApprox bool
}

// PlanDecision reports one query's routing: which method answered, why
// it was picked, and the predicted vs observed cost.
type PlanDecision struct {
	Method           string
	Reason           string // "warmup", "probe", or "cost"
	PredictedSeconds float64
	ObservedSeconds  float64
	Cancelled        bool
}

// PlanMethodStats is one candidate's row in a PlanSummary.
type PlanMethodStats struct {
	Method      string
	Queries     int64
	Decisions   map[string]int64
	PredictedMs float64
	ObservedMs  float64
	PruneFrac   float64
}

// PlanSummary aggregates the planner's decisions and calibration.
type PlanSummary struct {
	Queries        int64
	Mispredicts    int64
	MispredictRate float64
	Methods        []PlanMethodStats
}

// Planner is the cost-based query planner behind `fexserve -method
// auto`: it builds several exact retrieval methods over the same items
// and routes each query to the predicted-cheapest one, calibrating its
// per-method cost model online from observed latencies and pruning
// fractions. Results are always produced by a real registered method —
// the planner never computes scores — so exactness is untouched: a
// mispredicted plan is slow, never wrong.
type Planner struct {
	p *plan.Planner
}

// NewPlanner builds the candidate pool and the planner over it.
func NewPlanner(items *Matrix, o PlannerOptions) (*Planner, error) {
	names := o.Methods
	if len(names) == 0 {
		names = method.AutoNames()
	}
	bo := method.BuildOptions{}
	if o.SampleQueries != nil {
		bo.SampleQueries = o.SampleQueries.m
	}
	var cands []plan.Candidate
	for _, name := range names {
		d, err := method.Get(name)
		if err != nil {
			return nil, err
		}
		s, err := method.Sharded(name, items.m, bo, o.Shards, o.Workers)
		if err != nil {
			return nil, err
		}
		cands = append(cands, plan.Candidate{
			Name:     d.Name,
			Searcher: search.WithContext(s),
			Cost:     d.Cost,
			Exact:    d.Exact,
		})
	}
	p, err := plan.New(cands, plan.Options{
		N: items.Rows(), D: items.Cols(),
		Shards: o.Shards, Workers: o.Workers,
		ProbeEvery: o.ProbeEvery, AllowApprox: o.AllowApprox,
	})
	if err != nil {
		return nil, err
	}
	return &Planner{p: p}, nil
}

// Search implements Searcher by routing to the planned method.
func (p *Planner) Search(q []float64, k int) []Result {
	return convertResults(p.p.Search(q, k))
}

// SearchContext implements Searcher: cancellation returns the chosen
// method's best-so-far partial results with an ErrDeadline-wrapping
// error, exactly as if that method had been called directly.
func (p *Planner) SearchContext(ctx context.Context, q []float64, k int) ([]Result, error) {
	res, err := p.p.SearchContext(ctx, q, k)
	return convertResults(res), err
}

// LastStats implements Searcher: the stage counters of the method the
// last query was routed to, unchanged.
func (p *Planner) LastStats() Stats { return convertStats(p.p.Stats()) }

// LastDecision reports the most recent query's plan.
func (p *Planner) LastDecision() PlanDecision {
	d := p.p.LastDecision()
	return PlanDecision{
		Method: d.Method, Reason: d.Reason,
		PredictedSeconds: d.Predicted, ObservedSeconds: d.Observed,
		Cancelled: d.Cancelled,
	}
}

// Candidates lists the candidate method names in pool order.
func (p *Planner) Candidates() []string { return p.p.Candidates() }

// Summary snapshots per-method decision counts and the planner's
// predicted-vs-observed calibration.
func (p *Planner) Summary() PlanSummary {
	s := p.p.Summary()
	out := PlanSummary{Queries: s.Queries, Mispredicts: s.Mispredicts, MispredictRate: s.MispredictRate}
	for _, m := range s.Methods {
		out.Methods = append(out.Methods, PlanMethodStats{
			Method: m.Method, Queries: m.Queries, Decisions: m.Decisions,
			PredictedMs: m.PredictedMs, ObservedMs: m.ObservedMs, PruneFrac: m.PruneFrac,
		})
	}
	return out
}

var _ Searcher = (*Planner)(nil)
