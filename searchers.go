package fexipro

import (
	"context"

	"fexipro/internal/batch"
	"fexipro/internal/core"
	"fexipro/internal/engine"
	"fexipro/internal/lemp"
	"fexipro/internal/method"
	"fexipro/internal/search"
	"fexipro/internal/vec"
)

// Options selects FEXIPRO's techniques and parameters. The zero value is
// the paper's recommended full configuration F-SIR with ρ=0.7, e=100.
type Options struct {
	// Variant names the technique combination: "F-SIR" (default), "F-S",
	// "F-I", "F-SI", "F-SR", or "F" for the bare sorted scan.
	Variant string
	// Rho sets the singular-value mass ratio that picks the checking
	// dimension w (default 0.7).
	Rho float64
	// E is the integer scaling parameter (default 100).
	E float64
	// W overrides the checking dimension (0 = derive from Rho).
	W int
	// CompactInts stores integer approximations as int16 (halving their
	// footprint); automatically falls back to int32 when E would
	// overflow.
	CompactInts bool
	// Shards splits the index into that many contiguous partitions of
	// the norm-sorted items, answered in parallel per query by the
	// sharded execution engine and merged into the exact canonical
	// top-k; results are bit-identical to the single-shard scan for
	// every shard count. Values ≤ 1 keep the classic sequential scan.
	Shards int
	// Workers bounds the per-query goroutine pool used when Shards > 1
	// (≤ 0 means GOMAXPROCS, clamped to Shards). Ignored for Shards ≤ 1.
	Workers int
}

// FEXIPRO is the framework's public handle: a preprocessed index plus a
// single-threaded query executor (or, with Options.Shards > 1, a
// sharded execution engine that answers each query with a bounded
// worker pool and merges per-shard heaps into the exact canonical
// top-k; see DESIGN.md §11). For concurrent querying, share the index
// via Clone-free Retriever() calls: each executor owns independent
// scratch state.
type FEXIPRO struct {
	idx     *core.Index
	r       *core.Retriever // Shards ≤ 1 path
	eng     *engine.Engine  // Shards > 1 path (nil otherwise)
	shards  int
	workers int
}

// New preprocesses items (rows are item vectors; copied) into a FEXIPRO
// index using the requested variant.
func New(items *Matrix, opts Options) (*FEXIPRO, error) {
	variant := opts.Variant
	if variant == "" {
		variant = "F-SIR"
	}
	copts, err := core.OptionsForVariant(variant)
	if err != nil {
		return nil, err
	}
	copts.Rho = opts.Rho
	copts.E = opts.E
	copts.W = opts.W
	copts.CompactInts = opts.CompactInts
	idx, err := core.NewIndex(items.m, copts)
	if err != nil {
		return nil, err
	}
	// The sequential retriever is always present: SearchAbove has no
	// sharded path, and with Shards ≤ 1 it also answers Search.
	f := &FEXIPRO{idx: idx, r: core.NewRetriever(idx), shards: 1, workers: opts.Workers}
	if opts.Shards > 1 {
		kern := core.NewSharded(idx, opts.Shards)
		f.shards = kern.Shards() // clamped to the item count
		f.eng = engine.New(kern, opts.Workers)
	}
	return f, nil
}

// Search implements Searcher.
func (f *FEXIPRO) Search(q []float64, k int) []Result {
	if f.eng != nil {
		return convertResults(f.eng.Search(q, k))
	}
	return convertResults(f.r.Search(q, k))
}

// SearchContext implements Searcher: on cancellation it returns the
// best-so-far partial top-k and an ErrDeadline-wrapping error.
func (f *FEXIPRO) SearchContext(ctx context.Context, q []float64, k int) ([]Result, error) {
	if f.eng != nil {
		res, err := f.eng.SearchContext(ctx, q, k)
		return convertResults(res), err
	}
	res, err := f.r.SearchContext(ctx, q, k)
	return convertResults(res), err
}

// LastStats implements Searcher.
func (f *FEXIPRO) LastStats() Stats {
	if f.eng != nil {
		return convertStats(f.eng.Stats())
	}
	return convertStats(f.r.Stats())
}

// Retriever returns an additional query executor sharing this index;
// each executor may be used from one goroutine at a time. The executor
// inherits the instance's shard configuration.
func (f *FEXIPRO) Retriever() Searcher {
	if f.shards > 1 {
		return wrap{s: engine.New(core.NewSharded(f.idx, f.shards), f.workers)}
	}
	return wrap{s: core.NewRetriever(f.idx)}
}

// Shards reports the number of index shards answering each query (1 for
// the classic sequential scan).
func (f *FEXIPRO) Shards() int { return f.shards }

// SearchWorkers reports the effective per-query worker-pool size (1 for
// the classic sequential scan).
func (f *FEXIPRO) SearchWorkers() int {
	if f.eng == nil {
		return 1
	}
	return f.eng.Workers()
}

// W reports the checking dimension chosen during preprocessing.
func (f *FEXIPRO) W() int { return f.idx.W() }

// TopKAll answers the top-k lists for a whole query workload against the
// shared index, processing queries in decreasing norm order and sharding
// them across workers (≤ 0 for single-threaded). Results are in input
// order.
func (f *FEXIPRO) TopKAll(queries *Matrix, k, workers int) ([][]Result, error) {
	return f.TopKAllContext(context.Background(), queries, k, workers)
}

// TopKAllContext behaves like TopKAll but honours ctx: on cancellation
// it stops promptly and returns the per-query lists completed so far
// (unprocessed slots stay nil; the query cut short keeps its
// best-so-far partial) together with an ErrDeadline-wrapping error. A
// nil error flags every list as exact.
func (f *FEXIPRO) TopKAllContext(ctx context.Context, queries *Matrix, k, workers int) ([][]Result, error) {
	raw, err := core.BatchTopKContext(ctx, f.idx, queries.m, k, workers)
	if raw == nil {
		return nil, err
	}
	out := make([][]Result, len(raw))
	for i, rs := range raw {
		if rs != nil {
			out[i] = convertResults(rs)
		}
	}
	return out, err
}

var _ Searcher = (*FEXIPRO)(nil)

// Methods lists every retrieval method registered in this build, in
// registry order (the paper's table order with off-table methods
// interleaved). Any of these names — or their aliases, case-insensitive
// — works with NewMethod and PlannerOptions.Methods.
func Methods() []string { return method.Names() }

// MethodOptions tunes NewMethod. The zero value selects each method's
// documented defaults; fields a method does not use are ignored.
type MethodOptions struct {
	// SampleQueries drives LEMP-style checking-dimension tuning for
	// SS-L and LEMP (optional, may be nil).
	SampleQueries *Matrix
	// W is SS's checking dimension, or the FEXIPRO family's override for
	// the ρ-derived one (0 = derive).
	W int
	// Rho, E, CompactInts are the FEXIPRO family's preprocessing
	// parameters (zero values = paper defaults).
	Rho, E      float64
	CompactInts bool
	// LeafSize bounds tree leaves for BallTree/FastMKS/PCATree (0 = 20).
	LeafSize int
	// BucketSize is LEMP's norm-bucket size (0 = default).
	BucketSize int
	// SpillFraction is PCATree's spill overlap (0 = none).
	SpillFraction float64
	// Shards > 1 partitions the index and answers each query through the
	// sharded execution engine with Workers goroutines (DESIGN.md §11).
	Shards, Workers int
}

func (o MethodOptions) internal() method.BuildOptions {
	bo := method.BuildOptions{
		W: o.W, Rho: o.Rho, E: o.E, CompactInts: o.CompactInts,
		LeafSize: o.LeafSize, BucketSize: o.BucketSize, SpillFraction: o.SpillFraction,
	}
	if o.SampleQueries != nil {
		bo.SampleQueries = o.SampleQueries.m
	}
	return bo
}

// NewMethod builds any registered retrieval method by name (see
// Methods), resolving through the same registry as every tool in this
// repository.
func NewMethod(name string, items *Matrix, o MethodOptions) (Searcher, error) {
	s, err := method.Sharded(name, items.m, o.internal(), o.Shards, o.Workers)
	if err != nil {
		return nil, err
	}
	return wrap{s: s}, nil
}

// builtin builds a registry method whose descriptor cannot fail for a
// valid matrix (the baselines below); the panic is unreachable by
// construction.
func builtin(name string, items *vec.Matrix, o method.BuildOptions) search.Searcher {
	s, err := method.Build(name, items, o)
	if err != nil {
		panic("fexipro: " + err.Error())
	}
	return s
}

// NewNaive returns the exhaustive-scan baseline (items referenced, not
// copied; do not mutate afterwards).
func NewNaive(items *Matrix) Searcher {
	return wrap{s: builtin("Naive", items.m, method.BuildOptions{})}
}

// NewSS returns the Cauchy–Schwarz sorted scan with incremental pruning
// at checking dimension w (0 = default d/5).
func NewSS(items *Matrix, w int) Searcher {
	return wrap{s: builtin("SS", items.m, method.BuildOptions{W: w})}
}

// NewSSL returns SS-L, the LEMP-style normalized-vector scan baseline.
// sampleQueries (optional, may be nil) drives LEMP-style w tuning.
func NewSSL(items *Matrix, sampleQueries *Matrix) Searcher {
	o := method.BuildOptions{}
	if sampleQueries != nil {
		o.SampleQueries = sampleQueries.m
	}
	return wrap{s: builtin("SS-L", items.m, o)}
}

// NewBallTree returns the BallTree exact MIPS baseline of Ram & Gray
// (leafSize 0 = the paper's 20).
func NewBallTree(items *Matrix, leafSize int) Searcher {
	return wrap{s: builtin("BallTree", items.m, method.BuildOptions{LeafSize: leafSize})}
}

// NewFastMKS returns the cover-tree max-kernel baseline (leafSize 0 =
// default 20).
func NewFastMKS(items *Matrix, leafSize int) Searcher {
	return wrap{s: builtin("FastMKS", items.m, method.BuildOptions{LeafSize: leafSize})}
}

// NewPCATree returns the APPROXIMATE PCA-tree baseline of Bachrach et
// al.; spillFraction > 0 trades speed for quality.
func NewPCATree(items *Matrix, leafSize int, spillFraction float64) Searcher {
	return wrap{s: builtin("PCATree", items.m, method.BuildOptions{LeafSize: leafSize, SpillFraction: spillFraction})}
}

// LEMP is the batch top-k join engine (Teflioudi et al.).
type LEMP struct {
	idx *lemp.Index
}

// NewLEMP indexes items for batch retrieval. sampleQueries (optional)
// tunes each bucket's checking dimension.
func NewLEMP(items *Matrix, bucketSize int, sampleQueries *Matrix) *LEMP {
	o := method.BuildOptions{BucketSize: bucketSize}
	if sampleQueries != nil {
		o.SampleQueries = sampleQueries.m
	}
	// The registry returns LEMP as a generic Searcher; the public LEMP
	// type keeps the concrete index for its batch TopKJoin API.
	return &LEMP{idx: builtin("LEMP", items.m, o).(*lemp.Index)}
}

// Search implements Searcher for a single query.
func (l *LEMP) Search(q []float64, k int) []Result {
	return convertResults(l.idx.Search(q, k))
}

// SearchContext implements Searcher: on cancellation it returns the
// best-so-far partial top-k and an ErrDeadline-wrapping error.
func (l *LEMP) SearchContext(ctx context.Context, q []float64, k int) ([]Result, error) {
	res, err := l.idx.SearchContext(ctx, q, k)
	return convertResults(res), err
}

// LastStats implements Searcher.
func (l *LEMP) LastStats() Stats { return convertStats(l.idx.Stats()) }

// TopKJoin returns the top-k list for every query row.
func (l *LEMP) TopKJoin(queries *Matrix, k int) [][]Result {
	out, _ := l.TopKJoinContext(context.Background(), queries, k, 1)
	return out
}

// TopKJoinContext behaves like TopKJoin but honours ctx and shards the
// query workload across workers (≤ 0 for single-threaded): on
// cancellation it stops promptly and returns the per-query lists
// completed so far (unprocessed slots stay nil; the query cut short
// keeps its best-so-far partial) together with an ErrDeadline-wrapping
// error. A nil error flags every list as exact.
func (l *LEMP) TopKJoinContext(ctx context.Context, queries *Matrix, k, workers int) ([][]Result, error) {
	raw, err := l.idx.TopKJoinContext(ctx, queries.m, k, workers)
	if raw == nil {
		return nil, err
	}
	out := make([][]Result, len(raw))
	for i, rs := range raw {
		if rs != nil {
			out[i] = convertResults(rs)
		}
	}
	return out, err
}

var _ Searcher = (*LEMP)(nil)

// MiniBatch is the blocked-matrix-multiplication batch baseline.
type MiniBatch struct {
	mb *batch.MiniBatch
}

// NewMiniBatch creates a batched GEMM engine (batchSize ≤ 0 → 100,
// workers ≤ 0 → GOMAXPROCS).
func NewMiniBatch(items *Matrix, batchSize, workers int) *MiniBatch {
	return &MiniBatch{mb: batch.New(items.m, batch.Options{BatchSize: batchSize, Workers: workers})}
}

// TopKAll returns the top-k list for every query row.
func (m *MiniBatch) TopKAll(queries *Matrix, k int) [][]Result {
	out, _ := m.TopKAllContext(context.Background(), queries, k)
	return out
}

// TopKAllContext behaves like TopKAll but honours ctx between query
// batches: on cancellation it returns the batches completed so far
// (unprocessed query rows stay nil) with an ErrDeadline-wrapping error.
// Every filled slot holds the exact top-k for its query.
func (m *MiniBatch) TopKAllContext(ctx context.Context, queries *Matrix, k int) ([][]Result, error) {
	raw, err := m.mb.TopKAllContext(ctx, queries.m, k)
	out := make([][]Result, len(raw))
	for i, rs := range raw {
		if rs != nil {
			out[i] = convertResults(rs)
		}
	}
	return out, err
}
