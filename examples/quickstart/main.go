// Quickstart: index a synthetic item-factor matrix and answer exact
// top-k inner-product queries with FEXIPRO, verifying against a naive
// scan and printing the pruning statistics.
package main

import (
	"fmt"
	"log"
	"time"

	"fexipro"
)

func main() {
	// A synthetic workload mimicking the paper's MovieLens factors:
	// 10,000 items and 5 user queries, 50 latent dimensions.
	ds, err := fexipro.GenerateDataset("movielens", 10000, 5, 50)
	if err != nil {
		log.Fatal(err)
	}

	// Preprocess the items with the full framework (F-SIR: SVD
	// transformation + integer bound + monotonicity reduction).
	start := time.Now()
	searcher, err := fexipro.New(ds.Items, fexipro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d items (d=%d) in %v; checking dimension w=%d\n\n",
		ds.Items.Rows(), ds.Items.Cols(), time.Since(start).Round(time.Millisecond), searcher.W())

	naive := fexipro.NewNaive(ds.Items)
	for qi := 0; qi < ds.Queries.Rows(); qi++ {
		q := ds.Queries.Row(qi)

		start = time.Now()
		top := searcher.Search(q, 5)
		elapsed := time.Since(start)
		st := searcher.LastStats()

		fmt.Printf("query %d (%v): ", qi, elapsed.Round(time.Microsecond))
		for _, r := range top {
			fmt.Printf("item %d (%.3f)  ", r.ID, r.Score)
		}
		fmt.Printf("\n  scanned %d, pruned %d, full products %d (of %d items)\n",
			st.Scanned, st.Pruned, st.FullProducts, ds.Items.Rows())

		// FEXIPRO is exact: the naive scan must agree.
		want := naive.Search(q, 5)
		for i := range want {
			if top[i].ID != want[i].ID {
				log.Fatalf("mismatch with naive scan at rank %d: %v vs %v", i, top[i], want[i])
			}
		}
	}
	fmt.Println("\nall results verified against the naive scan ✓")
}
