// End-to-end recommender: the paper's Figure 1 pipeline.
//
// Learning phase: synthetic ratings are factorized with CCD++ (the
// LIBPMF algorithm the paper uses). Retrieval phase: FEXIPRO serves
// exact top-k recommendations from the learned factors.
package main

import (
	"fmt"
	"log"
	"time"

	"fexipro"
)

func main() {
	const (
		numUsers = 2000
		numItems = 1500
		dim      = 32
	)

	// Synthetic ratings from a planted low-rank model (1..5 stars).
	ratings := fexipro.GenerateRatings(numUsers, numItems, dim, 40, 7)
	split := len(ratings) * 9 / 10
	train, test := ratings[:split], ratings[split:]
	fmt.Printf("learning phase: CCD++ on %d ratings (%d users × %d items, d=%d)\n",
		len(train), numUsers, numItems, dim)

	start := time.Now()
	rec, err := fexipro.Train(train, numUsers, numItems,
		fexipro.TrainConfig{Dim: dim, Algorithm: "ccd", Iterations: 8, Seed: 7},
		fexipro.Options{}) // retrieval phase: F-SIR
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v — train RMSE %.4f, test RMSE %.4f\n\n",
		time.Since(start).Round(time.Millisecond), rec.RMSE(train), rec.RMSE(test))

	// Retrieval phase: top-5 recommendations for a few users.
	naive := fexipro.NewNaive(rec.ItemFactors())
	var totalRetrieval time.Duration
	for _, user := range []int{0, 1, 2, 500, 1999} {
		start = time.Now()
		top, err := rec.Recommend(user, 5)
		if err != nil {
			log.Fatal(err)
		}
		totalRetrieval += time.Since(start)

		fmt.Printf("user %4d → ", user)
		for _, r := range top {
			fmt.Printf("item %4d (score %.3f, rating≈%.2f)  ",
				r.ID, r.Score, r.Score+rec.GlobalBias())
		}
		fmt.Println()

		// Cross-check against a naive scan of the learned factors. Ties
		// are broken arbitrarily (Problem 1 of the paper) — a cold-start
		// user with a zero vector ties every item — so compare scores.
		want := naive.Search(rec.UserVector(user), 5)
		for i := range want {
			if diff := top[i].Score - want[i].Score; diff > 1e-9 || diff < -1e-9 {
				log.Fatalf("user %d rank %d: FEXIPRO %v != naive %v", user, i, top[i], want[i])
			}
		}
	}
	fmt.Printf("\n5 users served in %v total, all verified exact ✓\n",
		totalRetrieval.Round(time.Microsecond))
}
