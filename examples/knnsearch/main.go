// k-NN search through inner-product retrieval: Theorem 4 in reverse.
//
// Section 5 of the paper notes that its monotonicity transformation also
// reduces Euclidean k-NN search to top-k inner-product retrieval: map
// each data point x to p = (‖x‖², x) and a query to q = (-1, 2·query);
// then qᵀp = -‖x‖² + 2·queryᵀx = ‖query‖² - ‖query - x‖² (up to the
// query-constant ‖query‖²), so the LARGEST inner products are exactly
// the NEAREST neighbours. This example runs k-NN over a FEXIPRO index
// built on the lifted vectors and verifies against brute force.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"time"

	"fexipro"
)

func main() {
	const (
		n = 20000
		d = 20
		k = 5
	)
	rng := rand.New(rand.NewSource(5))

	// Clustered points: k-NN should recover cluster-mates.
	points := make([][]float64, n)
	for i := range points {
		center := float64(rng.Intn(8))
		points[i] = make([]float64, d)
		for j := range points[i] {
			points[i][j] = center + 0.5*rng.NormFloat64()
		}
	}

	// Lift: p = (‖x‖², x₁, …, x_d).
	lifted := fexipro.NewMatrix(n, d+1)
	for i, x := range points {
		var ns float64
		for _, v := range x {
			ns += v * v
		}
		lifted.Set(i, 0, ns)
		for j, v := range x {
			lifted.Set(i, j+1, v)
		}
	}

	searcher, err := fexipro.New(lifted, fexipro.Options{})
	if err != nil {
		log.Fatal(err)
	}

	for trial := 0; trial < 5; trial++ {
		query := make([]float64, d)
		for j := range query {
			query[j] = float64(rng.Intn(8)) + 0.5*rng.NormFloat64()
		}
		// Lift the query: q = (-1, 2·query).
		lq := make([]float64, d+1)
		lq[0] = -1
		for j, v := range query {
			lq[j+1] = 2 * v
		}

		start := time.Now()
		got := searcher.Search(lq, k)
		elapsed := time.Since(start)

		// Brute-force k-NN ground truth.
		type nn struct {
			id   int
			dist float64
		}
		all := make([]nn, n)
		for i, x := range points {
			var ds float64
			for j, v := range x {
				diff := v - query[j]
				ds += diff * diff
			}
			all[i] = nn{i, ds}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].dist < all[b].dist })

		fmt.Printf("query %d (%v): nearest neighbours", trial, elapsed.Round(time.Microsecond))
		for rank, r := range got {
			dist := math.Sqrt(all[rank].dist)
			fmt.Printf("  #%d=%d (%.3f)", rank+1, r.ID, dist)
			if r.ID != all[rank].id {
				// Allow exact-tie swaps only.
				if math.Abs(all[rank].dist-distOf(points, r.ID, query)) > 1e-9 {
					log.Fatalf("rank %d: FEXIPRO returned %d, brute force %d", rank, r.ID, all[rank].id)
				}
			}
		}
		fmt.Println("  ✓")
	}
	fmt.Println("\nEuclidean k-NN answered exactly via inner-product retrieval")
}

func distOf(points [][]float64, id int, query []float64) float64 {
	var ds float64
	for j, v := range points[id] {
		diff := v - query[j]
		ds += diff * diff
	}
	return ds
}
