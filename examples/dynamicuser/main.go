// Dynamic user vectors: the FindMe / Microsoft Xbox scenario that
// motivates FEXIPRO's single-query design (Section 1 of the paper).
//
// Batch engines (LEMP, MiniBatch) precompute against a STATIC user
// matrix Q; recommenders that adjust the user vector online — blending
// in session context, recent clicks, contextual boosts — must answer
// each adjusted vector as a fresh single query. This example simulates a
// session whose user vector drifts every interaction and compares
// FEXIPRO's per-query latency with a naive scan, verifying exactness at
// every step.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fexipro"
)

func main() {
	ds, err := fexipro.GenerateDataset("yelp", 30000, 1, 50)
	if err != nil {
		log.Fatal(err)
	}
	searcher, err := fexipro.New(ds.Items, fexipro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	naive := fexipro.NewNaive(ds.Items)

	// Start from a learned user vector; drift it across 20 interactions.
	q := append([]float64(nil), ds.Queries.Row(0)...)
	rng := rand.New(rand.NewSource(99))

	var fexTotal, naiveTotal time.Duration
	changed := 0
	var prevTop int = -1
	for step := 0; step < 20; step++ {
		// Contextual adjustment: the session nudges a few latent factors
		// (e.g., the user clicked a "spicy food" venue).
		for t := 0; t < 3; t++ {
			q[rng.Intn(len(q))] += 0.15 * rng.NormFloat64()
		}

		start := time.Now()
		top := searcher.Search(q, 3)
		fexTotal += time.Since(start)

		start = time.Now()
		want := naive.Search(q, 3)
		naiveTotal += time.Since(start)

		for i := range want {
			if top[i].ID != want[i].ID {
				log.Fatalf("step %d rank %d: %v != %v", step, i, top[i], want[i])
			}
		}
		if top[0].ID != prevTop {
			changed++
			prevTop = top[0].ID
		}
	}

	fmt.Printf("20 dynamically adjusted queries over %d items\n", ds.Items.Rows())
	fmt.Printf("  FEXIPRO: %8v total (%v/query)\n", fexTotal.Round(time.Microsecond),
		(fexTotal / 20).Round(time.Microsecond))
	fmt.Printf("  Naive:   %8v total (%v/query)\n", naiveTotal.Round(time.Microsecond),
		(naiveTotal / 20).Round(time.Microsecond))
	fmt.Printf("  speedup: %.1fx — top recommendation changed %d times as the session drifted\n",
		float64(naiveTotal)/float64(fexTotal), changed)
	fmt.Println("  all 20 answers verified exact ✓")
}
