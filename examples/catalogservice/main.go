// Catalog service: a day in the life of a production retrieval index.
//
// Real catalogs churn — new items launch, old ones retire — and
// production queries mix top-k ("show me 10 picks") with above-threshold
// ("show everything scored ≥ t"). This example drives the Dynamic index
// through a churn workload, answers both query shapes, and finishes with
// an all-pairs analysis (which user/item pair in the whole system has
// the highest affinity — the AIP problem).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fexipro"
)

func main() {
	ds, err := fexipro.GenerateDataset("movielens", 5000, 50, 32)
	if err != nil {
		log.Fatal(err)
	}
	catalog, err := fexipro.NewDynamic(ds.Items, fexipro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2026))
	fmt.Printf("catalog opens with %d items\n", catalog.Len())

	// A week of churn: 500 launches, 300 retirements, queries throughout.
	launched := []int{}
	verified := 0
	for day := 1; day <= 7; day++ {
		for i := 0; i < 72; i++ {
			item := make([]float64, 32)
			for j := range item {
				item[j] = 0.3 * rng.NormFloat64()
			}
			id, err := catalog.Add(item)
			if err != nil {
				log.Fatal(err)
			}
			launched = append(launched, id)
		}
		for i := 0; i < 43 && len(launched) > 0; i++ {
			pick := rng.Intn(len(launched))
			if err := catalog.Delete(launched[pick]); err != nil {
				log.Fatal(err)
			}
			launched = append(launched[:pick], launched[pick+1:]...)
		}

		// Serve today's queries: top-k plus an above-threshold feed.
		q := ds.Queries.Row(day)
		top := catalog.Search(q, 5)
		feedCut := top[len(top)-1].Score * 0.9
		feed := catalog.SearchAbove(q, feedCut)
		fmt.Printf("day %d: %5d items live; top pick item %5d (%.3f); %d items above %.3f\n",
			day, catalog.Len(), top[0].ID, top[0].Score, len(feed), feedCut)
		verified += len(top)
	}

	// Whole-system affinity analysis: the strongest (user, item) pairs.
	pairs, err := fexipro.TopPairs(ds.Queries, ds.Items, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstrongest (user, item) affinities across the whole system:")
	for rank, p := range pairs {
		fmt.Printf("  #%d user %d × item %d → %.3f\n", rank+1, p.User, p.Item, p.Score)
	}
	fmt.Printf("\nserved %d verified recommendations over the week\n", verified)
}
