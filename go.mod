module fexipro

go 1.22
