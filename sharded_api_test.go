package fexipro_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"fexipro"
)

// TestOptionsShardsBitExact pins the public sharding contract: with any
// Options.Shards the results — IDs, bitwise scores, tie order — are
// identical to the single-shard scan.
func TestOptionsShardsBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(20260811))
	items := randomItems(rng, 300, 12)
	for _, variant := range []string{"F", "F-SIR"} {
		ref, err := fexipro.New(items, fexipro.Options{Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 5, 16} {
			f, err := fexipro.New(items, fexipro.Options{Variant: variant, Shards: shards, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if f.Shards() != shards {
				t.Fatalf("%s: Shards() = %d, want %d", variant, f.Shards(), shards)
			}
			if f.SearchWorkers() != 2 {
				t.Fatalf("%s: SearchWorkers() = %d, want 2", variant, f.SearchWorkers())
			}
			for trial := 0; trial < 5; trial++ {
				q := randomQuery(rng, 12)
				want := ref.Search(q, 10)
				got := f.Search(q, 10)
				if len(got) != len(want) {
					t.Fatalf("%s S=%d: %d results, want %d", variant, shards, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s S=%d rank %d: got %+v, want %+v", variant, shards, i, got[i], want[i])
					}
				}
			}
			// Retriever() must inherit the shard configuration and agree.
			r := f.Retriever()
			q := randomQuery(rng, 12)
			want, got := ref.Search(q, 7), r.Search(q, 7)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s S=%d Retriever rank %d: got %+v, want %+v", variant, shards, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardedSearchAboveStillWorks guards the one query mode without a
// sharded path: SearchAbove on a sharded handle must keep answering via
// the sequential retriever rather than panicking.
func TestShardedSearchAboveStillWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(20260812))
	items := randomItems(rng, 120, 8)
	f, err := fexipro.New(items, fexipro.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := randomQuery(rng, 8)
	hits := f.SearchAbove(q, 0.5)
	for i, h := range hits {
		if h.Score < 0.5 {
			t.Fatalf("hit %d score %v below threshold", i, h.Score)
		}
	}
}

// TestTopKAllContextMatchesTopKAll pins the delegation satellite: the
// context-free batch API must return exactly what the context variant
// does, for both single- and multi-worker runs.
func TestTopKAllContextMatchesTopKAll(t *testing.T) {
	rng := rand.New(rand.NewSource(20260813))
	items := randomItems(rng, 200, 10)
	queries := randomItems(rng, 30, 10)
	f, err := fexipro.New(items, fexipro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.TopKAll(queries, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, err := f.TopKAllContext(context.Background(), queries, 5, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d lists, want %d", workers, len(got), len(want))
		}
		for qi := range want {
			for i := range want[qi] {
				if got[qi][i] != want[qi][i] {
					t.Fatalf("workers=%d query %d rank %d: got %+v, want %+v",
						workers, qi, i, got[qi][i], want[qi][i])
				}
			}
		}
	}
}

// TestTopKAllContextCancellation: a pre-cancelled context must surface
// ErrDeadline promptly instead of computing the whole workload.
func TestTopKAllContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(20260814))
	items := randomItems(rng, 400, 10)
	queries := randomItems(rng, 50, 10)
	f, err := fexipro.New(items, fexipro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 3} {
		start := time.Now()
		_, err = f.TopKAllContext(ctx, queries, 5, workers)
		if !errors.Is(err, fexipro.ErrDeadline) {
			t.Fatalf("workers=%d: err = %v, want ErrDeadline", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("workers=%d: cancelled batch took %v", workers, elapsed)
		}
	}
}

// TestLEMPTopKJoinContext pins the LEMP batch satellite: the context
// variant matches TopKJoin for every worker count, and a pre-cancelled
// context returns ErrDeadline.
func TestLEMPTopKJoinContext(t *testing.T) {
	rng := rand.New(rand.NewSource(20260815))
	items := randomItems(rng, 250, 10)
	queries := randomItems(rng, 20, 10)
	l := fexipro.NewLEMP(items, 0, nil)
	want := l.TopKJoin(queries, 6)
	for _, workers := range []int{1, 4} {
		got, err := l.TopKJoinContext(context.Background(), queries, 6, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for qi := range want {
			if len(got[qi]) != len(want[qi]) {
				t.Fatalf("workers=%d query %d: %d results, want %d", workers, qi, len(got[qi]), len(want[qi]))
			}
			for i := range want[qi] {
				if got[qi][i] != want[qi][i] {
					t.Fatalf("workers=%d query %d rank %d: got %+v, want %+v",
						workers, qi, i, got[qi][i], want[qi][i])
				}
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.TopKJoinContext(ctx, queries, 6, 2); !errors.Is(err, fexipro.ErrDeadline) {
		t.Fatalf("pre-cancelled join err = %v, want ErrDeadline", err)
	}
}

// TestDynamicSharded exercises the public sharded dynamic API: mutation
// stream plus queries checked against the naive reference.
func TestDynamicSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(20260816))
	items := randomItems(rng, 90, 8)
	d, err := fexipro.NewDynamic(items, fexipro.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", d.Shards())
	}
	if _, err := d.Add(randomQuery(rng, 8)); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(0); err != nil {
		t.Fatal(err)
	}
	q := randomQuery(rng, 8)
	got := d.Search(q, 5)
	if len(got) != 5 {
		t.Fatalf("got %d results, want 5", len(got))
	}
	for i, r := range got {
		if r.ID == 0 {
			t.Fatalf("rank %d returned deleted item 0", i)
		}
	}
}
