# Developer and CI entry points. `make verify` is the tier-1 gate;
# `make check` adds vet, lint, formatting, and the race detector (on the
# concurrency-sensitive subset) on top. CI splits verify / race /
# fuzz-smoke into parallel jobs (.github/workflows/ci.yml).

GO ?= go

# Packages exercising concurrency-sensitive code under the race
# detector: the server guard stack and e2e chaos test, the metrics
# registry, the fault-injection hooks, and the cancellation paths of the
# core retriever and the scan baselines. `make race` runs everything.
RACE_PKGS = ./internal/server/... ./internal/obs/... ./internal/faults/... ./internal/core/... ./internal/scan/...

# Per-target budget for the fuzz smoke (`go test -fuzz` accepts exactly
# one target per invocation).
FUZZTIME ?= 10s

.PHONY: all verify build test check vet lint fmt-check precommit race race-subset fuzz-smoke bench

all: check

## verify: the tier-1 gate — build everything, run every test.
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## check: verify + static analysis + formatting + race detector on the
## concurrency-sensitive subset (fast enough for a local loop; CI also
## runs the full `make race`).
check: verify vet lint fmt-check race-subset

vet:
	$(GO) vet ./...

## lint: project-specific static analysis. fexlint enforces FEXIPRO's
## exactness and telemetry invariants (float comparisons, stage-counter
## discipline, RNG seeding, discarded errors, mutex/atomic copies).
## Exits non-zero on any diagnostic; see DESIGN.md "Static analysis".
lint:
	$(GO) run ./cmd/fexlint ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## precommit: the fast pre-push gate — formatting, vet, and fexlint,
## failing at the first broken step. Run this before every commit.
precommit: fmt-check vet lint

## race: full test suite under the race detector.
race:
	$(GO) test -race ./...

## race-subset: the race detector on the packages where it earns its
## keep (see RACE_PKGS above); what `make check` runs locally.
race-subset:
	$(GO) test -race $(RACE_PKGS)

## fuzz-smoke: run each fuzz target for FUZZTIME on top of the committed
## regression corpus (internal/data/testdata/fuzz). New crashers found
## here should be committed as corpus seeds.
fuzz-smoke:
	$(GO) test ./internal/data -run='^$$' -fuzz=FuzzReadMatrixBinary -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/data -run='^$$' -fuzz=FuzzReadMatrixCSV -fuzztime=$(FUZZTIME)

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
