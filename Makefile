# Developer and CI entry points. `make verify` is the tier-1 gate;
# `make check` adds vet, formatting, and the race detector on top.

GO ?= go

.PHONY: all verify build test check vet fmt-check race bench

all: check

## verify: the tier-1 gate — build everything, run every test.
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## check: verify + static analysis + formatting + race detector.
check: verify vet fmt-check race

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## race: full test suite under the race detector (observability layer
## has dedicated concurrent-writer tests).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
