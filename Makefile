# Developer and CI entry points. `make verify` is the tier-1 gate;
# `make check` adds vet, lint, formatting, and the race detector (on the
# concurrency-sensitive subset) on top. CI splits verify / race /
# fuzz-smoke into parallel jobs (.github/workflows/ci.yml).

GO ?= go

# Packages exercising concurrency-sensitive code under the race
# detector: the server guard stack and e2e chaos test, the metrics
# registry (including span trees and sliding-window rotation), the
# fault-injection hooks, the cancellation paths of the core retriever
# and the scan baselines, the sharded execution engine and its kernels,
# and the open-loop load generator's concurrent senders, plus the query
# planner (EWMA calibration under the server's concurrent searches) and
# the method registry its candidates come from. `make race` runs
# everything.
RACE_PKGS = ./internal/server/... ./internal/obs/... ./internal/faults/... ./internal/core/... ./internal/scan/... ./internal/engine/... ./internal/load/... ./internal/snap/... ./internal/plan/... ./internal/method/...

# Per-target budget for the fuzz smoke (`go test -fuzz` accepts exactly
# one target per invocation).
FUZZTIME ?= 10s

.PHONY: all verify build test check vet lint lint-race lint-fix-check perf-gate perf-facts fmt-check precommit race race-subset fuzz-smoke bench bench-shard load-smoke

all: check

## verify: the tier-1 gate — build everything, run every test.
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## check: verify + static analysis + formatting + race detector on the
## concurrency-sensitive subset (fast enough for a local loop; CI also
## runs the full `make race`).
check: verify vet lint lint-fix-check perf-gate fmt-check race-subset

vet:
	$(GO) vet ./...

## lint: project-specific static analysis. fexlint enforces FEXIPRO's
## exactness, concurrency, and telemetry invariants (float comparisons,
## stage-counter discipline, RNG seeding, discarded errors, mutex/atomic
## copies, cancellable scan loops, kernel threshold contracts, lock-hold
## discipline, //fex:hot allocation freedom, Search⇄SearchContext
## parity, lock-order deadlock candidates, goroutine join edges,
## //fex:guard field enforcement). Exits 0 clean / 1 findings / 2 load
## error; findings in .fexlint-baseline.json are suppressed-and-counted,
## anything new fails, and -check-baseline fails on baseline rot (dead
## entries whose findings no longer fire). See DESIGN.md §12.
lint:
	$(GO) run ./cmd/fexlint -check-baseline ./...

## lint-race: the lint driver's own tests under the race detector — the
## parallel loader (single-flight import cache, serialized stdlib
## importer) and the parallel per-unit analysis phase are themselves
## concurrency-sensitive code.
lint-race:
	$(GO) test -race ./internal/lint/...

## lint-fix-check: assert `fexlint -fix` is a no-op on a clean tree —
## every committed finding must be genuinely fixed, not merely fixable.
lint-fix-check:
	@log="$$($(GO) run ./cmd/fexlint -fix ./... 2>&1)"; status=$$?; \
	if echo "$$log" | grep -q '^fexlint: fixed'; then \
		echo "$$log"; \
		echo "lint-fix-check: -fix rewrote files; commit real fixes, not fixable findings"; \
		exit 1; \
	fi; \
	if [ $$status -ne 0 ]; then echo "$$log"; exit $$status; fi

## perf-gate: compiler-fact perf contracts (DESIGN.md §14). Runs the
## real compiler with `-gcflags='-m -d=ssa/check_bce'` and checks the
## diagnostics against the committed .fexperf-facts.json: //fex:hot
## loops must stay free of heap escapes, their bounds-check counts may
## only ratchet down, and //fex:inline kernels must stay inlinable.
## Skips (exit 0, with a reason) on toolchain skew; regenerate the
## manifest with `make perf-facts` after an intentional change.
perf-gate:
	$(GO) run ./cmd/fexlint -perf ./...

## perf-facts: regenerate .fexperf-facts.json from the current tree and
## toolchain. Commit the result; CI diffs against it.
perf-facts:
	$(GO) run ./cmd/fexlint -write-perf-facts ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## precommit: the fast pre-push gate — formatting, vet, and fexlint,
## failing at the first broken step. Run this before every commit.
precommit: fmt-check vet lint

## race: full test suite under the race detector.
race:
	$(GO) test -race ./...

## race-subset: the race detector on the packages where it earns its
## keep (see RACE_PKGS above); what `make check` runs locally.
race-subset:
	$(GO) test -race $(RACE_PKGS)

## fuzz-smoke: run each fuzz target for FUZZTIME on top of the committed
## regression corpus (internal/data/testdata/fuzz). New crashers found
## here should be committed as corpus seeds.
fuzz-smoke:
	$(GO) test ./internal/data -run='^$$' -fuzz=FuzzReadMatrixBinary -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/data -run='^$$' -fuzz=FuzzReadMatrixCSV -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/engine -run='^$$' -fuzz=FuzzPartitionRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/snap -run='^$$' -fuzz=FuzzSnapshotLoad -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/snap -run='^$$' -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME)

## load-smoke: fexload in self-contained mode — it starts an in-process
## fexserve over a synthetic catalog, offers a short open-loop workload
## with interleaved mutations, and must produce a well-formed fexload/v1
## -slojson report (fexload itself validates the report and exits
## non-zero otherwise; the grep pins the schema tag on disk).
load-smoke:
	$(GO) run ./cmd/fexload -items 500 -dim 8 -rate 300 -duration 2s \
		-mutate-every 10 -burst-every 1s -burst-dur 250ms -burst-factor 2 \
		-slojson fexload-smoke.json
	@grep -q '"schema": "fexload/v1"' fexload-smoke.json || \
		{ echo "load-smoke: report missing fexload/v1 schema tag"; exit 1; }
	@rm -f fexload-smoke.json

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

## bench-shard: the sharded execution engine benchmark (sequential
## retriever vs engine at several shard counts), then a sharded
## -statsjson dump whose per-stage counters can be diffed field by field
## against a sequential run of the same workload.
bench-shard:
	$(GO) test -bench=BenchmarkShardedSearch -benchtime=1x -run='^$$' .
	$(GO) run ./cmd/fexbench -statsjson -profiles movielens -items 5000 -queries 20 -k 10 -methods F-SIR -shards 8 -workers 4
