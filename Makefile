# Developer and CI entry points. `make verify` is the tier-1 gate;
# `make check` adds vet, lint, formatting, and the race detector on top.

GO ?= go

.PHONY: all verify build test check vet lint fmt-check precommit race bench

all: check

## verify: the tier-1 gate — build everything, run every test.
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## check: verify + static analysis + formatting + race detector.
check: verify vet lint fmt-check race

vet:
	$(GO) vet ./...

## lint: project-specific static analysis. fexlint enforces FEXIPRO's
## exactness and telemetry invariants (float comparisons, stage-counter
## discipline, RNG seeding, discarded errors, mutex/atomic copies).
## Exits non-zero on any diagnostic; see DESIGN.md "Static analysis".
lint:
	$(GO) run ./cmd/fexlint ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## precommit: the fast pre-push gate — formatting, vet, and fexlint,
## failing at the first broken step. Run this before every commit.
precommit: fmt-check vet lint

## race: full test suite under the race detector (observability layer
## has dedicated concurrent-writer tests).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
