// Ablation benchmarks for the design choices called out in DESIGN.md:
// each switch disables one decision the paper (or this implementation)
// made, quantifying its contribution on the calibrated workloads.
package fexipro_test

import (
	"testing"

	"fexipro/internal/core"
)

func runAblation(b *testing.B, profile string, opts core.Options) {
	b.Helper()
	ds := benchDataset(b, profile)
	idx, err := core.NewIndex(ds.Items, opts)
	if err != nil {
		b.Fatal(err)
	}
	r := core.NewRetriever(idx)
	b.ResetTimer()
	var full int
	for i := 0; i < b.N; i++ {
		full = 0
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			r.Search(ds.Queries.Row(qi), 1)
			full += r.Stats().FullProducts
		}
	}
	b.ReportMetric(float64(full)/float64(ds.Queries.Rows), "fullIP/query")
}

var fullOpts = core.Options{SVD: true, Int: true, Reduction: true}

// BenchmarkAblationSort — the norm sort + early termination of
// Algorithm 1 versus a per-candidate length test only.
func BenchmarkAblationSort(b *testing.B) {
	for _, p := range []string{"movielens", "netflix"} {
		b.Run(p+"/sorted", func(b *testing.B) { runAblation(b, p, fullOpts) })
		o := fullOpts
		o.Unsorted = true
		b.Run(p+"/unsorted", func(b *testing.B) { runAblation(b, p, o) })
	}
}

// BenchmarkAblationIntScaling — Equation 7 per-part scaling versus the
// Equation 4 single global maximum.
func BenchmarkAblationIntScaling(b *testing.B) {
	for _, p := range []string{"movielens", "netflix"} {
		b.Run(p+"/per-part", func(b *testing.B) { runAblation(b, p, fullOpts) })
		o := fullOpts
		o.GlobalIntScaling = true
		b.Run(p+"/global", func(b *testing.B) { runAblation(b, p, o) })
	}
}

// BenchmarkAblationOrder — the paper's SIR check order versus SRI
// (reduction before the integer bounds).
func BenchmarkAblationOrder(b *testing.B) {
	for _, p := range []string{"movielens", "netflix"} {
		b.Run(p+"/SIR", func(b *testing.B) { runAblation(b, p, fullOpts) })
		o := fullOpts
		o.ReductionFirst = true
		b.Run(p+"/SRI", func(b *testing.B) { runAblation(b, p, o) })
	}
}

// BenchmarkAblationSlack — the pruning safety margin versus the paper's
// strict comparisons (PruneSlack = 0).
func BenchmarkAblationSlack(b *testing.B) {
	for _, p := range []string{"movielens"} {
		b.Run(p+"/slack-1e-9", func(b *testing.B) { runAblation(b, p, fullOpts) })
		o := fullOpts
		o.PruneSlack = -1 // normalized to 0 = strict paper comparisons
		b.Run(p+"/strict", func(b *testing.B) { runAblation(b, p, o) })
	}
}

// BenchmarkAblationW — fixed checking dimensions versus the ρ-derived
// one, exposing the w sensitivity that Figure 10 sweeps via ρ.
func BenchmarkAblationW(b *testing.B) {
	for _, w := range []int{2, 8, 25, 49} {
		o := fullOpts
		o.W = w
		b.Run("movielens/w="+itoa(w), func(b *testing.B) { runAblation(b, "movielens", o) })
	}
	b.Run("movielens/w=rho0.7", func(b *testing.B) { runAblation(b, "movielens", fullOpts) })
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationIntWidth — int32 floors versus the compact int16
// representation (the paper's "small integer types" future-work item).
func BenchmarkAblationIntWidth(b *testing.B) {
	for _, p := range []string{"movielens", "netflix"} {
		b.Run(p+"/int32", func(b *testing.B) { runAblation(b, p, fullOpts) })
		o := fullOpts
		o.CompactInts = true
		b.Run(p+"/int16", func(b *testing.B) { runAblation(b, p, o) })
	}
}
