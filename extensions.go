package fexipro

import (
	"context"
	"os"

	"fexipro/internal/aip"
	"fexipro/internal/core"
)

// SaveIndex writes the preprocessed index to path, so a later process
// can LoadIndex instead of repeating the O(n·d²) preprocessing.
func (f *FEXIPRO) SaveIndex(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.idx.WriteTo(file); err != nil {
		_ = file.Close() // the write error is the one worth reporting
		return err
	}
	return file.Close()
}

// LoadIndex reads an index written by SaveIndex. The loaded searcher
// answers queries identically (same results, same pruning decisions) to
// the one that was saved.
func LoadIndex(path string) (*FEXIPRO, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	idx, err := core.ReadIndex(file)
	if err != nil {
		return nil, err
	}
	return &FEXIPRO{idx: idx, r: core.NewRetriever(idx), shards: 1}, nil
}

// SearchAbove returns every item whose inner product with q is at least
// t, sorted by descending score — the above-t retrieval mode (the
// original LEMP task, listed as future work in the FEXIPRO paper). The
// threshold comparison is subject to float64 rounding of the products
// (~1e-12 relative); thresholds exactly equal to an item's score are
// inherently knife-edge.
func (f *FEXIPRO) SearchAbove(q []float64, t float64) []Result {
	return convertResults(f.r.SearchAbove(q, t))
}

// SearchAboveContext behaves like SearchAbove but honours ctx: on
// cancellation it returns the (sorted) items found so far with an
// ErrDeadline-wrapping error; the set may be missing qualifying items.
func (f *FEXIPRO) SearchAboveContext(ctx context.Context, q []float64, t float64) ([]Result, error) {
	res, err := f.r.SearchAboveContext(ctx, q, t)
	return convertResults(res), err
}

// SearchAbove returns every item with qᵀp ≥ t using LEMP's bucketized
// scan (its native problem formulation).
func (l *LEMP) SearchAbove(q []float64, t float64) []Result {
	return convertResults(l.idx.SearchAbove(q, t))
}

// SearchAboveContext behaves like SearchAbove but honours ctx: on
// cancellation it returns the (sorted) items found so far with an
// ErrDeadline-wrapping error; the set may be missing qualifying items.
func (l *LEMP) SearchAboveContext(ctx context.Context, q []float64, t float64) ([]Result, error) {
	res, err := l.idx.SearchAboveContext(ctx, q, t)
	return convertResults(res), err
}

// AboveJoin answers the batch above-t task: for every query row, all
// items with product ≥ t.
func (l *LEMP) AboveJoin(queries *Matrix, t float64) [][]Result {
	raw := l.idx.AboveJoin(queries.m, t)
	out := make([][]Result, len(raw))
	for i, rs := range raw {
		out[i] = convertResults(rs)
	}
	return out
}

// Dynamic is an exact top-k index over a mutable item catalog: a
// preprocessed FEXIPRO index plus a small delta buffer and tombstones,
// rebuilt automatically as changes accumulate. IDs returned by Search
// are stable catalog IDs (initial row indices, then Add's return
// values), and never resurrect deleted items.
//
// With Options.Shards > 1 the catalog is split into that many
// independently indexed shards (stable mapping id mod Shards): a single
// Add or Delete only ever rebuilds the one shard owning the item,
// cutting the amortized rebuild cost ~Shards×, and queries fan out
// across the shards through the sharded execution engine. Per-shard
// preprocessing means scores match the monolithic index to float
// tolerance rather than bitwise; they remain exact inner products.
type Dynamic struct {
	di *core.DynamicIndex
}

// NewDynamic starts a dynamic index from an initial catalog (it may have
// zero rows, but must have a positive column count). opts selects the
// FEXIPRO variant used for the indexed tier plus the shard/worker
// configuration.
func NewDynamic(initial *Matrix, opts Options) (*Dynamic, error) {
	variant := opts.Variant
	if variant == "" {
		variant = "F-SIR"
	}
	copts, err := core.OptionsForVariant(variant)
	if err != nil {
		return nil, err
	}
	copts.Rho, copts.E, copts.W = opts.Rho, opts.E, opts.W
	copts.CompactInts = opts.CompactInts
	shards, workers := opts.Shards, opts.Workers
	if shards < 1 {
		shards = 1
	}
	if workers == 0 {
		workers = 1
	}
	di, err := core.NewDynamicIndexSharded(initial.m, copts, 0, shards, workers)
	if err != nil {
		return nil, err
	}
	return &Dynamic{di: di}, nil
}

// Shards reports the number of independent catalog shards.
func (d *Dynamic) Shards() int { return d.di.Shards() }

// Add inserts an item, returning its stable catalog ID.
func (d *Dynamic) Add(item []float64) (int, error) { return d.di.Add(item) }

// Delete retires an item by catalog ID.
func (d *Dynamic) Delete(id int) error { return d.di.Delete(id) }

// Len returns the number of live items.
func (d *Dynamic) Len() int { return d.di.Len() }

// Search implements Searcher over the live catalog.
func (d *Dynamic) Search(q []float64, k int) []Result {
	return convertResults(d.di.Search(q, k))
}

// SearchContext implements Searcher: on cancellation it returns the
// best-so-far partial top-k and an ErrDeadline-wrapping error.
func (d *Dynamic) SearchContext(ctx context.Context, q []float64, k int) ([]Result, error) {
	res, err := d.di.SearchContext(ctx, q, k)
	return convertResults(res), err
}

// SearchAbove returns every live item with qᵀp ≥ t, sorted by
// descending score.
func (d *Dynamic) SearchAbove(q []float64, t float64) []Result {
	return convertResults(d.di.SearchAbove(q, t))
}

// SearchAboveContext behaves like SearchAbove but honours ctx,
// returning the sorted partial result set with an ErrDeadline-wrapping
// error on cancellation.
func (d *Dynamic) SearchAboveContext(ctx context.Context, q []float64, t float64) ([]Result, error) {
	res, err := d.di.SearchAboveContext(ctx, q, t)
	return convertResults(res), err
}

// LastStats implements Searcher.
func (d *Dynamic) LastStats() Stats { return convertStats(d.di.Stats()) }

var _ Searcher = (*Dynamic)(nil)

// Pair is one (user, item) entry of an all-pairs top-k result.
type Pair struct {
	User, Item int
	Score      float64
}

// TopPairs returns the k largest inner products across ALL (user, item)
// pairs, exactly — the AIP problem of Ballard et al., driven by a
// FEXIPRO index with a global threshold.
func TopPairs(users, items *Matrix, k int) ([]Pair, error) {
	raw, err := aip.Exact(users.m, items.m, k, core.Options{SVD: true, Int: true, Reduction: true})
	if err != nil {
		return nil, err
	}
	return convertPairs(raw), nil
}

// TopPairsSampled approximates TopPairs by diamond-style sampling with
// exact verification of the sampled candidates: returned scores are true
// inner products, but the candidate set may miss true top-k pairs.
// samples ≤ 0 selects 100,000.
func TopPairsSampled(users, items *Matrix, k, samples int, seed int64) ([]Pair, error) {
	raw, err := aip.Sample(users.m, items.m, k, aip.SampleConfig{Samples: samples, Seed: seed})
	if err != nil {
		return nil, err
	}
	return convertPairs(raw), nil
}

func convertPairs(in []aip.Pair) []Pair {
	out := make([]Pair, len(in))
	for i, p := range in {
		out[i] = Pair{User: p.User, Item: p.Item, Score: p.Score}
	}
	return out
}
