package fexipro_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"fexipro"
)

func TestSearchAbovePublic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	items := randomItems(rng, 500, 10)
	f, err := fexipro.New(items, fexipro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := fexipro.NewLEMP(items, 0, nil)
	for trial := 0; trial < 5; trial++ {
		q := randomQuery(rng, 10)
		ranked := naiveTopK(items, q, 500)
		thr := ranked[20].Score - 1e-9*(1+math.Abs(ranked[20].Score))
		wantCount := 0
		for _, r := range ranked {
			if r.Score >= thr {
				wantCount++
			}
		}
		for name, got := range map[string][]fexipro.Result{
			"fexipro": f.SearchAbove(q, thr),
			"lemp":    l.SearchAbove(q, thr),
		} {
			if len(got) != wantCount {
				t.Fatalf("%s: got %d results, want %d", name, len(got), wantCount)
			}
			for _, r := range got {
				if r.Score < thr {
					t.Fatalf("%s: %v below threshold %v", name, r.Score, thr)
				}
			}
		}
	}
}

func TestAboveJoinPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := randomItems(rng, 200, 8)
	queries := randomItems(rng, 6, 8)
	l := fexipro.NewLEMP(items, 0, nil)
	all := l.AboveJoin(queries, 1.0)
	if len(all) != 6 {
		t.Fatalf("got %d lists", len(all))
	}
	for qi, list := range all {
		for _, r := range list {
			if r.Score < 1.0 {
				t.Fatalf("query %d: %v below threshold", qi, r)
			}
		}
	}
}

func TestDynamicPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	items := randomItems(rng, 100, 6)
	d, err := fexipro.NewDynamic(items, fexipro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	newItem := []float64{9, 9, 9, 9, 9, 9}
	id, err := d.Add(newItem)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{1, 1, 1, 1, 1, 1}
	top := d.Search(q, 1)
	if top[0].ID != id {
		t.Fatalf("dominant new item not returned: %v", top)
	}
	if err := d.Delete(id); err != nil {
		t.Fatal(err)
	}
	top = d.Search(q, 1)
	if top[0].ID == id {
		t.Fatal("deleted item returned")
	}
	if _, err := fexipro.NewDynamic(items, fexipro.Options{Variant: "zzz"}); err == nil {
		t.Fatal("expected variant error")
	}
}

func TestTopPairsPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	users := randomItems(rng, 40, 6)
	items := randomItems(rng, 60, 6)
	got, err := fexipro.TopPairs(users, items, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force reference.
	type pr struct {
		u, i int
		s    float64
	}
	var all []pr
	for u := 0; u < 40; u++ {
		for i := 0; i < 60; i++ {
			var s float64
			for j := 0; j < 6; j++ {
				s += users.At(u, j) * items.At(i, j)
			}
			all = append(all, pr{u, i, s})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].s > all[b].s })
	for i := 0; i < 10; i++ {
		if math.Abs(got[i].Score-all[i].s) > 1e-7*(1+math.Abs(all[i].s)) {
			t.Fatalf("rank %d: %v vs %v", i, got[i], all[i])
		}
	}

	sampled, err := fexipro.TopPairsSampled(users, items, 10, 300000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled) == 0 {
		t.Fatal("sampling returned nothing")
	}
	// The single largest pair should be found with high probability.
	if sampled[0].Score < all[0].s-1e-9 && sampled[0].Score < all[2].s {
		t.Fatalf("sampled top %v far below true top %v", sampled[0].Score, all[0].s)
	}
}

func TestTopKAllPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	items := randomItems(rng, 300, 9)
	queries := randomItems(rng, 15, 9)
	f, err := fexipro.New(items, fexipro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := f.TopKAll(queries, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < queries.Rows(); qi++ {
		checkMatch(t, all[qi], naiveTopK(items, queries.Row(qi), 4), "topkall")
	}
	if _, err := f.TopKAll(randomItems(rng, 2, 5), 1, 1); err == nil {
		t.Fatal("expected dim error")
	}
}

func TestSaveLoadIndexPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	items := randomItems(rng, 200, 8)
	f, err := fexipro.New(items, fexipro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/index.fxi"
	if err := f.SaveIndex(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := fexipro.LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	q := randomQuery(rng, 8)
	a, b := f.Search(q, 5), loaded.Search(q, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %v vs %v", i, a[i], b[i])
		}
	}
	if _, err := fexipro.LoadIndex(t.TempDir() + "/missing.fxi"); err == nil {
		t.Fatal("expected error for missing file")
	}
}
