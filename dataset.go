package fexipro

import (
	"io"

	"fexipro/internal/data"
)

// Dataset is a synthetic retrieval workload: item factors plus query
// (user) vectors, generated from one of the paper-calibrated profiles.
type Dataset struct {
	// Name is the profile name ("movielens", "yelp", "netflix", "yahoo").
	Name string
	// Items holds the item factor vectors (rows).
	Items *Matrix
	// Queries holds user query vectors (rows).
	Queries *Matrix
}

// GenerateDataset produces a deterministic synthetic workload that mimics
// the named evaluation dataset of the paper (see DESIGN.md for the
// calibration). Pass 0 for numItems/numQueries/d to use the profile's
// benchmark defaults.
func GenerateDataset(profile string, numItems, numQueries, d int) (*Dataset, error) {
	p, err := data.ProfileByName(profile)
	if err != nil {
		return nil, err
	}
	ds := data.Generate(p, numItems, numQueries, d)
	return &Dataset{
		Name:    p.Name,
		Items:   &Matrix{m: ds.Items},
		Queries: &Matrix{m: ds.Queries},
	}, nil
}

// DatasetProfiles lists the available profile names in the paper's order.
func DatasetProfiles() []string {
	ps := data.Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// GenerateRatings produces a synthetic rating set from a planted low-rank
// model — the input for Train in end-to-end examples and tests.
func GenerateRatings(numUsers, numItems, dim, perUser int, seed int64) []Rating {
	raw, _, _ := data.PlantedRatings(data.RatingConfig{
		Users: numUsers, Items: numItems, Dim: dim,
		PerUser: perUser, Noise: 0.2, Scale: 5, Seed: seed,
	})
	out := make([]Rating, len(raw))
	for i, r := range raw {
		out[i] = Rating{User: r.User, Item: r.Item, Value: r.Value}
	}
	return out
}

// SaveMatrix writes a factor matrix to path in the library's binary
// format (FXP1).
func SaveMatrix(path string, m *Matrix) error { return data.SaveMatrix(path, m.m) }

// LoadMatrix reads a factor matrix written by SaveMatrix.
func LoadMatrix(path string) (*Matrix, error) {
	inner, err := data.LoadMatrix(path)
	if err != nil {
		return nil, err
	}
	return &Matrix{m: inner}, nil
}

// WriteMatrixCSV writes m as comma-separated rows.
func WriteMatrixCSV(w io.Writer, m *Matrix) error { return data.WriteMatrixCSV(w, m.m) }

// ReadMatrixCSV parses comma-separated rows.
func ReadMatrixCSV(r io.Reader) (*Matrix, error) {
	inner, err := data.ReadMatrixCSV(r)
	if err != nil {
		return nil, err
	}
	return &Matrix{m: inner}, nil
}
