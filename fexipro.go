// Package fexipro is a fast and exact top-k inner-product retrieval
// library for matrix-factorization recommender systems, implementing the
// FEXIPRO framework of Li, Chan, Yiu & Mamoulis (SIGMOD 2017) together
// with every baseline evaluated in the paper.
//
// Given an item factor matrix P (n items × d latent dimensions) and a
// user vector q, the library returns the k items with the largest inner
// products qᵀp — exactly, typically an order of magnitude faster than a
// full scan. FEXIPRO combines a sorted sequential scan with three
// losslessly invertible transformations:
//
//   - an SVD rotation that concentrates each query's energy in the
//     leading dimensions, making partial-product pruning effective,
//   - a scaled integer approximation whose integer-arithmetic upper
//     bound is checked before any floating-point work, and
//   - a reduction to nonnegative coordinates that makes partial inner
//     products monotone, yielding a second, tighter pruning bound.
//
// # Quick start
//
//	items := fexipro.MatrixFromRows(itemFactors) // n×d, rows are items
//	s, err := fexipro.New(items, fexipro.Options{})
//	if err != nil { ... }
//	top := s.Search(userVector, 10)
//	for _, r := range top {
//	    fmt.Println(r.ID, r.Score)
//	}
//
// Baselines (Naive, SS-L, BallTree, FastMKS, LEMP, PCATree, MiniBatch)
// are available through the same Searcher interface for benchmarking and
// verification; see the New* constructors.
package fexipro

import (
	"context"

	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// ErrDeadline is returned by SearchContext when a query is cancelled —
// deadline expiry or explicit cancel — before the scan completed.
// Results returned alongside it are the best-so-far partial top-k:
// every score is a true inner product, but items the scan had not
// reached may be missing, so the set must be treated as inexact. Only a
// (results, nil) return is guaranteed to be the exact top-k. Match with
// errors.Is.
var ErrDeadline = search.ErrDeadline

// Matrix is a dense row-major matrix of factor vectors: row i is the
// d-dimensional vector of item (or user) i.
type Matrix struct {
	m *vec.Matrix
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{m: vec.NewMatrix(rows, cols)}
}

// MatrixFromRows copies a slice of equal-length rows into a Matrix.
// It panics if the rows are ragged.
func MatrixFromRows(rows [][]float64) *Matrix {
	return &Matrix{m: vec.FromRows(rows)}
}

// Rows returns the number of vectors.
func (m *Matrix) Rows() int { return m.m.Rows }

// Cols returns the dimensionality d.
func (m *Matrix) Cols() int { return m.m.Cols }

// Row returns row i as a slice aliasing the matrix storage; mutating it
// mutates the matrix. Do not mutate a matrix after indexing it.
func (m *Matrix) Row(i int) []float64 { return m.m.Row(i) }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.m.At(i, j) }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.m.Set(i, j, v) }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix { return &Matrix{m: m.m.Clone()} }

// Result is one retrieved item.
type Result struct {
	// ID is the row index of the item in the indexed matrix.
	ID int
	// Score is the inner product qᵀp (exact for all methods but PCATree,
	// whose results are approximate by design).
	Score float64
}

// Stats reports the work performed by the most recent Search call of a
// Searcher, mirroring the instrumentation behind the paper's Tables 3/7.
// The five per-stage pruning counters are reported individually (one per
// bound in the cascade) alongside the collapsed Pruned total.
type Stats struct {
	// Scanned is the number of candidates examined before termination.
	Scanned int
	// PrunedByLength counts items skipped via the Cauchy–Schwarz length
	// bound, including everything cut off by early termination of the
	// sorted scan.
	PrunedByLength int
	// PrunedByIntHead and PrunedByIntFull count prunes by the partial and
	// full integer upper bounds.
	PrunedByIntHead int
	PrunedByIntFull int
	// PrunedByIncremental counts prunes by the float incremental bound
	// after the exact head dimensions.
	PrunedByIncremental int
	// PrunedByMonotone counts prunes by the monotonicity-reduction bound.
	PrunedByMonotone int
	// Pruned is the sum of the five per-stage counters: candidates
	// eliminated by any bound without computing their full inner product.
	Pruned int
	// FullProducts is the number of entire qᵀp computations.
	FullProducts int
	// NodesVisited counts tree nodes expanded (tree methods only).
	NodesVisited int
}

// TotalPruned returns the sum of the five per-stage pruning counters:
// every candidate eliminated by any bound without computing its full
// inner product. It always equals the Pruned field on Stats produced by
// this package; the method is the collapse point callers should use
// when deriving the total from individually adjusted stage counters.
func (s Stats) TotalPruned() int {
	return s.PrunedByLength + s.PrunedByIntHead + s.PrunedByIntFull +
		s.PrunedByIncremental + s.PrunedByMonotone
}

// Searcher is the common interface of every retrieval method.
type Searcher interface {
	// Search returns the top-k inner products of q against the indexed
	// items, sorted by descending score.
	Search(q []float64, k int) []Result
	// SearchContext behaves like Search but honours ctx: on deadline
	// expiry or cancellation it promptly returns the best-so-far partial
	// results together with an error satisfying
	// errors.Is(err, ErrDeadline). A nil error flags the results as
	// exact.
	SearchContext(ctx context.Context, q []float64, k int) ([]Result, error)
	// LastStats reports counters for the most recent Search call.
	LastStats() Stats
}

// wrap adapts an internal searcher to the public interface.
type wrap struct {
	s search.Searcher
}

func (w wrap) Search(q []float64, k int) []Result {
	return convertResults(w.s.Search(q, k))
}

func (w wrap) SearchContext(ctx context.Context, q []float64, k int) ([]Result, error) {
	res, err := search.WithContext(w.s).SearchContext(ctx, q, k)
	return convertResults(res), err
}

func (w wrap) LastStats() Stats { return convertStats(w.s.Stats()) }

func convertResults(in []topk.Result) []Result {
	out := make([]Result, len(in))
	for i, r := range in {
		out[i] = Result{ID: r.ID, Score: r.Score}
	}
	return out
}

func convertStats(st search.Stats) Stats {
	return Stats{
		Scanned:             st.Scanned,
		PrunedByLength:      st.PrunedByLength,
		PrunedByIntHead:     st.PrunedByIntHead,
		PrunedByIntFull:     st.PrunedByIntFull,
		PrunedByIncremental: st.PrunedByIncremental,
		PrunedByMonotone:    st.PrunedByMonotone,
		Pruned:              st.TotalPruned(),
		FullProducts:        st.FullProducts,
		NodesVisited:        st.NodesVisited,
	}
}
