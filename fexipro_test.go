package fexipro_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"fexipro"
)

func randomItems(rng *rand.Rand, n, d int) *fexipro.Matrix {
	m := fexipro.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		scale := math.Exp(0.5 * rng.NormFloat64())
		for j := 0; j < d; j++ {
			m.Set(i, j, scale*rng.NormFloat64())
		}
	}
	return m
}

func randomQuery(rng *rand.Rand, d int) []float64 {
	q := make([]float64, d)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	return q
}

// naiveTopK is an independent reference implementation.
func naiveTopK(items *fexipro.Matrix, q []float64, k int) []fexipro.Result {
	type pair struct {
		id    int
		score float64
	}
	all := make([]pair, items.Rows())
	for i := range all {
		var s float64
		row := items.Row(i)
		for j, v := range row {
			s += v * q[j]
		}
		all[i] = pair{i, s}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].score > all[i].score {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([]fexipro.Result, k)
	for i := 0; i < k; i++ {
		out[i] = fexipro.Result{ID: all[i].id, Score: all[i].score}
	}
	return out
}

func checkMatch(t *testing.T, got, want []fexipro.Result, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-7*(1+math.Abs(want[i].Score)) {
			t.Fatalf("%s: rank %d score %v, want %v", label, i, got[i].Score, want[i].Score)
		}
	}
}

func TestPublicSearchersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 400, 12)
	samples := randomItems(rng, 5, 12)

	fex, err := fexipro.New(items, fexipro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	searchers := map[string]fexipro.Searcher{
		"fexipro":  fex,
		"naive":    fexipro.NewNaive(items),
		"ss":       fexipro.NewSS(items, 0),
		"ssl":      fexipro.NewSSL(items, samples),
		"balltree": fexipro.NewBallTree(items, 0),
		"fastmks":  fexipro.NewFastMKS(items, 0),
		"lemp":     fexipro.NewLEMP(items, 0, nil),
	}
	for trial := 0; trial < 5; trial++ {
		q := randomQuery(rng, 12)
		want := naiveTopK(items, q, 7)
		for name, s := range searchers {
			checkMatch(t, s.Search(q, 7), want, name)
		}
	}
}

func TestVariantOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randomItems(rng, 200, 10)
	for _, variant := range []string{"F", "F-S", "F-I", "F-SI", "F-SR", "F-SIR"} {
		s, err := fexipro.New(items, fexipro.Options{Variant: variant})
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		q := randomQuery(rng, 10)
		checkMatch(t, s.Search(q, 5), naiveTopK(items, q, 5), variant)
	}
	if _, err := fexipro.New(items, fexipro.Options{Variant: "bogus"}); err == nil {
		t.Fatal("expected error for bad variant")
	}
}

func TestStatsExposed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randomItems(rng, 1000, 16)
	s, err := fexipro.New(items, fexipro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Search(randomQuery(rng, 16), 3)
	st := s.LastStats()
	if st.Scanned+st.Pruned == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.FullProducts > st.Scanned {
		t.Fatalf("inconsistent stats: %+v", st)
	}
	if s.W() < 1 || s.W() >= 16 {
		t.Fatalf("W = %d", s.W())
	}
}

func TestRetrieverConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := randomItems(rng, 300, 8)
	s, err := fexipro.New(items, fexipro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := randomQuery(rng, 8)
	want := s.Search(q, 5)
	done := make(chan bool, 4)
	for g := 0; g < 4; g++ {
		go func() {
			r := s.Retriever()
			ok := true
			for i := 0; i < 30; i++ {
				got := r.Search(q, 5)
				for j := range want {
					if got[j].ID != want[j].ID {
						ok = false
					}
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 4; g++ {
		if !<-done {
			t.Fatal("concurrent retriever returned different results")
		}
	}
}

func TestLEMPJoinAndMiniBatchAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randomItems(rng, 300, 10)
	queries := randomItems(rng, 12, 10)

	l := fexipro.NewLEMP(items, 64, nil)
	joined := l.TopKJoin(queries, 4)
	mb := fexipro.NewMiniBatch(items, 5, 2)
	batched := mb.TopKAll(queries, 4)
	for qi := 0; qi < queries.Rows(); qi++ {
		want := naiveTopK(items, queries.Row(qi), 4)
		checkMatch(t, joined[qi], want, "lemp-join")
		checkMatch(t, batched[qi], want, "minibatch")
	}
}

func TestPCATreeApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := randomItems(rng, 1000, 12)
	s := fexipro.NewPCATree(items, 32, 0.1)
	got := s.Search(randomQuery(rng, 12), 5)
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatal("results not sorted")
		}
	}
}

func TestEndToEndRecommender(t *testing.T) {
	ratings := fexipro.GenerateRatings(80, 60, 4, 20, 42)
	rec, err := fexipro.Train(ratings, 80, 60, fexipro.TrainConfig{Dim: 4}, fexipro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rmse := rec.RMSE(ratings); rmse > 1.0 {
		t.Fatalf("training RMSE %.3f too high", rmse)
	}
	top, err := rec.Recommend(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("got %d recommendations", len(top))
	}
	// The retrieval must agree with a brute-force scan of the factors.
	want := naiveTopK(rec.ItemFactors(), rec.UserVector(0), 5)
	checkMatch(t, top, want, "recommend")

	// Dynamic query vector path.
	qv := rec.UserVector(0)
	qv[0] += 0.5
	dyn := rec.RecommendVector(qv, 5)
	checkMatch(t, dyn, naiveTopK(rec.ItemFactors(), qv, 5), "dynamic")

	if _, err := rec.Recommend(-1, 5); err == nil {
		t.Fatal("expected error for bad user")
	}
}

func TestTrainSGDPath(t *testing.T) {
	ratings := fexipro.GenerateRatings(60, 40, 3, 15, 43)
	rec, err := fexipro.Train(ratings, 60, 40, fexipro.TrainConfig{Dim: 3, Algorithm: "sgd"}, fexipro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rmse := rec.RMSE(ratings); rmse > 1.2 {
		t.Fatalf("SGD RMSE %.3f", rmse)
	}
	if _, err := fexipro.Train(ratings, 60, 40, fexipro.TrainConfig{Algorithm: "nope"}, fexipro.Options{}); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestGenerateDataset(t *testing.T) {
	for _, name := range fexipro.DatasetProfiles() {
		ds, err := fexipro.GenerateDataset(name, 100, 10, 8)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Items.Rows() != 100 || ds.Items.Cols() != 8 || ds.Queries.Rows() != 10 {
			t.Fatalf("%s: bad shapes", name)
		}
	}
	if _, err := fexipro.GenerateDataset("unknown", 0, 0, 0); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestMatrixIO(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomItems(rng, 9, 3)
	path := t.TempDir() + "/m.fxp"
	if err := fexipro.SaveMatrix(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := fexipro.LoadMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatal("binary IO mismatch")
			}
		}
	}
	var buf bytes.Buffer
	if err := fexipro.WriteMatrixCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	csv, err := fexipro.ReadMatrixCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if csv.Rows() != 9 || csv.Cols() != 3 {
		t.Fatal("CSV IO mismatch")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := fexipro.MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows() != 2 || m.Cols() != 2 || m.At(1, 1) != 4 {
		t.Fatal("accessor mismatch")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases")
	}
}

func TestEvaluateRanking(t *testing.T) {
	ratings := fexipro.GenerateRatings(100, 80, 4, 30, 77)
	split := len(ratings) * 8 / 10
	rec, err := fexipro.Train(ratings[:split], 100, 80, fexipro.TrainConfig{Dim: 4}, fexipro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rec.EvaluateRanking(ratings[split:], 10, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Users == 0 {
		t.Fatal("no users evaluated")
	}
	for name, v := range map[string]float64{
		"precision": m.PrecisionAtK, "recall": m.RecallAtK, "ndcg": m.NDCGAtK, "map": m.MAP,
	} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("%s = %v out of [0,1]", name, v)
		}
	}
	// The learned model should rank relevant items far better than a
	// random ordering would (expected NDCG of random ≈ k/n ≈ 0.1-ish).
	if m.NDCGAtK < 0.05 {
		t.Fatalf("NDCG@10 = %v — model appears uninformative", m.NDCGAtK)
	}
}
